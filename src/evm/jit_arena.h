#ifndef MUFUZZ_EVM_JIT_ARENA_H_
#define MUFUZZ_EVM_JIT_ARENA_H_

#include <cstddef>
#include <cstdint>

namespace mufuzz::evm {

/// A W^X-correct slab of executable memory for one compiled contract.
///
/// Lifecycle: Allocate() maps the slab read-write, the compiler memcpys the
/// emitted code in, Seal() remaps it read-execute. The mapping is never
/// writable and executable at the same time, so the process stays compatible
/// with hardened kernels (PaX/SELinux `deny_execmem`-style policies would
/// still veto PROT_EXEC; on those systems Allocate() fails and the caller
/// falls back to the interpreter).
class JitArena {
 public:
  JitArena() = default;
  ~JitArena();

  JitArena(const JitArena&) = delete;
  JitArena& operator=(const JitArena&) = delete;
  JitArena(JitArena&& other) noexcept;
  JitArena& operator=(JitArena&& other) noexcept;

  /// Maps at least `size` bytes read-write. Returns false on mmap failure
  /// (out of address space, execmem policy); the arena stays empty.
  bool Allocate(size_t size);

  /// Flips the mapping to read-execute. Call exactly once, after the code
  /// has been copied in. Returns false if mprotect is refused.
  bool Seal();

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool sealed() const { return sealed_; }

 private:
  void Release();

  uint8_t* data_ = nullptr;
  size_t size_ = 0;  ///< mapped size (page-rounded)
  bool sealed_ = false;
};

}  // namespace mufuzz::evm

#endif  // MUFUZZ_EVM_JIT_ARENA_H_
