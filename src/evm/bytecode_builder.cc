#include "evm/bytecode_builder.h"

namespace mufuzz::evm {

void BytecodeBuilder::EmitPush(const U256& value) {
  auto raw = value.ToBytesBE();
  // Find the minimal byte width (at least one byte).
  size_t first = 0;
  while (first < 31 && raw[first] == 0) ++first;
  size_t width = 32 - first;
  code_.push_back(static_cast<uint8_t>(0x60 + width - 1));  // PUSHn
  code_.insert(code_.end(), raw.begin() + first, raw.end());
}

void BytecodeBuilder::EmitPushLabel(Label label) {
  code_.push_back(0x61);  // PUSH2
  fixups_.push_back({code_.size(), label});
  code_.push_back(0);
  code_.push_back(0);
}

Result<Bytes> BytecodeBuilder::Assemble() const {
  if (code_.size() > 0xffff) {
    return Status::CodegenError("code exceeds PUSH2 address space");
  }
  Bytes out = code_;
  for (const Fixup& fixup : fixups_) {
    uint32_t target = label_offsets_[fixup.label];
    if (target == kUnbound) {
      return Status::CodegenError("unbound label referenced");
    }
    out[fixup.offset] = static_cast<uint8_t>(target >> 8);
    out[fixup.offset + 1] = static_cast<uint8_t>(target & 0xff);
  }
  return out;
}

}  // namespace mufuzz::evm
