#include "evm/memory.h"

#include <algorithm>
#include <cstring>

namespace mufuzz::evm {

bool Memory::Expand(uint64_t offset, uint64_t len) {
  if (len == 0) return true;
  uint64_t end = offset + len;
  if (end < offset) return false;  // overflow
  if (end > kMaxBytes) return false;
  if (end > data_.size()) {
    // Round up to a 32-byte word boundary (EVM expands word-wise).
    uint64_t rounded = ((end + 31) / 32) * 32;
    data_.resize(rounded, 0);
  }
  return true;
}

bool Memory::Load32(uint64_t offset, U256* out) {
  if (!Expand(offset, 32)) return false;
  *out = U256::FromBytesBE(BytesView(data_.data() + offset, 32)).value();
  return true;
}

bool Memory::Store32(uint64_t offset, const U256& value) {
  if (!Expand(offset, 32)) return false;
  auto raw = value.ToBytesBE();
  std::memcpy(data_.data() + offset, raw.data(), 32);
  return true;
}

bool Memory::Store8(uint64_t offset, uint8_t value) {
  if (!Expand(offset, 1)) return false;
  data_[offset] = value;
  return true;
}

bool Memory::CopyIn(uint64_t offset, BytesView src, uint64_t src_offset,
                    uint64_t len) {
  if (len == 0) return true;
  if (!Expand(offset, len)) return false;
  for (uint64_t i = 0; i < len; ++i) {
    uint64_t s = src_offset + i;
    data_[offset + i] = (s < src.size()) ? src[s] : 0;
  }
  return true;
}

bool Memory::CopyOut(uint64_t offset, uint64_t len, Bytes* out) {
  if (len > kMaxBytes) return false;
  if (!Expand(offset, len)) return false;
  out->assign(data_.begin() + offset, data_.begin() + offset + len);
  return true;
}

}  // namespace mufuzz::evm
