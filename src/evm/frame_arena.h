#ifndef MUFUZZ_EVM_FRAME_ARENA_H_
#define MUFUZZ_EVM_FRAME_ARENA_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "evm/memory.h"
#include "evm/stack.h"

namespace mufuzz::evm {

/// Word-granular memory taint tags of one call frame (offset/32 → taint +
/// call id), so flows like `bool ok = send(...); require(ok)` survive the
/// memory round trip.
///
/// Open-addressing flat map (linear probing, backward-shift deletion)
/// replacing the per-frame std::unordered_map: the table's capacity is
/// retained across frames through Clear(), so in steady state the
/// MSTORE/MLOAD taint path never allocates — an unordered_map frees its
/// nodes on clear() and re-buys them next frame. Only tainted words live
/// here (storing taint 0 erases), so tables stay small; Clear is O(table)
/// with an O(1) fast path for the common untainted frame.
class MemTaintMap {
 public:
  struct Tag {
    uint32_t taint = 0;
    int32_t call_id = -1;
  };

  /// Tag for `word`, or nullptr if untainted. Valid until the next Set.
  const Tag* Find(uint64_t word) const {
    if (live_ == 0) return nullptr;
    const size_t mask = table_.size() - 1;
    for (size_t i = static_cast<size_t>(word) & mask;; i = (i + 1) & mask) {
      const Entry& e = table_[i];
      if (!e.live) return nullptr;
      if (e.word == word) return &e.tag;
    }
  }

  /// Inserts or overwrites the tag for `word`.
  void Set(uint64_t word, Tag tag) {
    if (table_.empty() || (live_ + 1) * 4 > table_.size() * 3) Grow();
    const size_t mask = table_.size() - 1;
    for (size_t i = static_cast<size_t>(word) & mask;; i = (i + 1) & mask) {
      Entry& e = table_[i];
      if (!e.live) {
        e.word = word;
        e.tag = tag;
        e.live = true;
        ++live_;
        return;
      }
      if (e.word == word) {
        e.tag = tag;
        return;
      }
    }
  }

  /// Removes `word`'s tag if present (backward-shift deletion: linear
  /// probing stays tombstone-free, lookups never degrade).
  void Erase(uint64_t word) {
    if (live_ == 0) return;
    const size_t mask = table_.size() - 1;
    size_t hole = static_cast<size_t>(word) & mask;
    for (;; hole = (hole + 1) & mask) {
      if (!table_[hole].live) return;
      if (table_[hole].word == word) break;
    }
    for (size_t j = (hole + 1) & mask; table_[j].live; j = (j + 1) & mask) {
      size_t home = static_cast<size_t>(table_[j].word) & mask;
      bool reachable = hole <= j ? (home <= hole || home > j)
                                 : (home <= hole && home > j);
      if (reachable) {
        table_[hole] = table_[j];
        hole = j;
      }
    }
    table_[hole].live = false;
    --live_;
  }

  /// Empties the map, retaining capacity (up to a cap so one taint-heavy
  /// frame cannot make every later clear pay for its high-water mark).
  void Clear() {
    if (live_ == 0) return;
    if (table_.size() > kMaxRetainedEntries) table_.resize(kMaxRetainedEntries);
    std::fill(table_.begin(), table_.end(), Entry{});
    live_ = 0;
  }

  size_t size() const { return live_; }

 private:
  struct Entry {
    uint64_t word = 0;
    Tag tag;
    bool live = false;
  };

  static constexpr size_t kMinCapacity = 16;          // power of two
  static constexpr size_t kMaxRetainedEntries = 1024;  // power of two

  void Grow() {
    std::vector<Entry> old = std::move(table_);
    table_.assign(old.empty() ? kMinCapacity : old.size() * 2, Entry{});
    live_ = 0;
    for (const Entry& e : old) {
      if (e.live) Set(e.word, e.tag);
    }
  }

  std::vector<Entry> table_;  ///< power-of-two when non-empty
  size_t live_ = 0;
};

/// Reusable state of one call frame: operand stack, byte memory, the last
/// child call's return data, and the word-taint map. The interpreter keeps
/// a stack-disciplined pool of these (one live arena per active frame,
/// recursion included), so in steady state frame entry is four
/// capacity-retaining clears instead of four container constructions — the
/// dominant per-transaction allocation cost before arenas.
struct FrameArena {
  Stack stack;
  Memory memory;
  Bytes return_data;
  MemTaintMap mem_taint;

  void Reset() {
    stack.Clear();
    memory.Clear();
    return_data.clear();
    mem_taint.Clear();
  }
};

}  // namespace mufuzz::evm

#endif  // MUFUZZ_EVM_FRAME_ARENA_H_
