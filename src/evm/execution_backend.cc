#include "evm/execution_backend.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace mufuzz::evm {

std::vector<SequenceOutcome> ExecutionBackend::ExecuteSequenceBatch(
    std::span<const SequencePlan> plans) {
  std::vector<SequenceOutcome> outcomes;
  outcomes.reserve(plans.size());
  for (const SequencePlan& plan : plans) {
    outcomes.push_back(ExecuteSequence(plan));
  }
  return outcomes;
}

ExecutionBackend::BatchTicket ExecutionBackend::SubmitBatch(
    std::vector<SequencePlan> plans) {
  BatchTicket ticket = next_ticket_++;
  PendingBatch pb;
  pb.ticket = ticket;
  pb.outcomes = AcquireOutcomeBuffer(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    ExecuteSequenceInto(plans[i], &pb.outcomes[i]);
  }
  pb.plans = std::move(plans);
  pending_.push_back(std::move(pb));
  return ticket;
}

std::vector<SequenceOutcome> ExecutionBackend::WaitBatch(BatchTicket ticket) {
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].ticket != ticket) continue;
    std::vector<SequenceOutcome> outcomes = std::move(pending_[i].outcomes);
    StashSpentPlans(std::move(pending_[i].plans));
    pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(i));
    return outcomes;
  }
  std::fprintf(stderr,
               "fatal: WaitBatch(%llu) for an unknown or already-redeemed "
               "ticket\n",
               static_cast<unsigned long long>(ticket));
  std::abort();
}

std::vector<SequenceOutcome> ExecutionBackend::AcquireOutcomeBuffer(size_t n) {
  std::vector<SequenceOutcome> buf;
  if (!outcome_pool_.empty()) {
    buf = std::move(outcome_pool_.back());
    outcome_pool_.pop_back();
  }
  while (buf.size() > n) {
    if (spare_outcomes_.size() < kMaxPooledBuffers * 4) {
      spare_outcomes_.push_back(std::move(buf.back()));
    }
    buf.pop_back();
  }
  if (buf.capacity() < n) buf.reserve(n);
  while (buf.size() < n) {
    if (!spare_outcomes_.empty()) {
      buf.push_back(std::move(spare_outcomes_.back()));
      spare_outcomes_.pop_back();
    } else {
      buf.emplace_back();
    }
  }
  return buf;
}

void ExecutionBackend::RecycleOutcomes(std::vector<SequenceOutcome> outcomes) {
  if (outcome_pool_.size() >= kMaxPooledBuffers) return;
  outcome_pool_.push_back(std::move(outcomes));
}

void ExecutionBackend::StashSpentPlans(std::vector<SequencePlan> plans) {
  if (plans.empty() || spent_plans_.size() >= kMaxPooledBuffers) return;
  spent_plans_.push_back(std::move(plans));
}

std::vector<SequencePlan> ExecutionBackend::TakeSpentPlans() {
  if (spent_plans_.empty()) return {};
  std::vector<SequencePlan> plans = std::move(spent_plans_.back());
  spent_plans_.pop_back();
  return plans;
}

SessionBackend::SessionBackend(Host* host, BlockContext block,
                               EvmConfig config) {
  Bind(host, block, config);
}

void SessionBackend::Bind(Host* host, BlockContext block, EvmConfig config) {
  host_ = host;
  session_.emplace(host, block, config);
  session_->interpreter().set_observer(&trace_);
  trace_.Clear();
  deployed_ = {};
}

void SessionBackend::Unbind() {
  session_.reset();
  host_ = nullptr;
  trace_.Clear();
  deployed_ = {};
}

void SessionBackend::CheckBound() const {
  if (!session_.has_value()) {
    std::fprintf(stderr,
                 "fatal: SessionBackend used before Bind() / after Unbind()\n");
    std::abort();
  }
}

Result<Address> SessionBackend::DeployContract(const Bytes& runtime_code,
                                               const Bytes& ctor_code,
                                               const Bytes& ctor_args,
                                               const Address& deployer,
                                               const U256& value) {
  CheckBound();
  return session_->Deploy(runtime_code, ctor_code, ctor_args, deployer,
                          value);
}

void SessionBackend::FundAccount(const Address& addr, const U256& balance) {
  CheckBound();
  session_->FundAccount(addr, balance);
}

void SessionBackend::MarkDeployed() {
  CheckBound();
  deployed_ = session_->Snapshot();
}

void SessionBackend::Rewind() {
  CheckBound();
  session_->Restore(deployed_);
}

SequenceOutcome SessionBackend::ExecuteSequence(const SequencePlan& plan) {
  SequenceOutcome out;
  ExecuteSequenceInto(plan, &out);
  return out;
}

void SessionBackend::ExecuteSequenceInto(const SequencePlan& plan,
                                         SequenceOutcome* out) {
  CheckBound();
  Rewind();
  host_->OnSequenceStart(plan.host_seed);
  out->ResetForReuse(plan.txs.size());
  trace_.Clear();
  for (size_t i = 0; i < plan.txs.size(); ++i) {
    const PreparedTx& ptx = plan.txs[i];
    host_->OnTransactionStart(ptx.request.data);
    ExecResult result = session_->Apply(ptx.request);
    TxOutcome& txo = out->txs[i];
    txo.tag = ptx.tag;
    txo.success = result.Success();
    txo.outcome = result.outcome;
    txo.gas_used = result.gas_used;
    session_->interpreter().TakeCmpRecords(&txo.cmps);
    // The recorded events land in the outcome slot; the slot's warm (cleared)
    // buffers come back to record the next transaction. O(1), no copies.
    trace_.Swap(&txo.trace);
    out->instructions += txo.trace.instruction_count();
    for (const BranchEvent& ev : txo.trace.branches()) {
      out->touched_pcs.push_back(ev.pc);
    }
  }
}

CodeCacheStats SessionBackend::code_cache_stats() const {
  if (!session_.has_value()) return {};
  return session_->interpreter().code_cache()->stats();
}

const CodeCache* SessionBackend::code_cache() const {
  if (!session_.has_value()) return nullptr;
  return session_->interpreter().code_cache();
}

const WorldState& SessionBackend::state() const {
  CheckBound();
  return session_->state();
}

std::unique_ptr<SessionBackend> SessionPool::Acquire(Rng* rng) {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.empty()) {
    ++created_;
    return std::make_unique<SessionBackend>();
  }
  size_t pick = rng != nullptr ? rng->NextBelow(free_.size())
                               : free_.size() - 1;
  std::unique_ptr<SessionBackend> backend = std::move(free_[pick]);
  free_[pick] = std::move(free_.back());
  free_.pop_back();
  return backend;
}

void SessionPool::Release(std::unique_ptr<SessionBackend> backend) {
  if (backend == nullptr) return;
  // The host the session was bound to belongs to the last campaign and may
  // already be gone; never keep a reachable reference to it in the pool.
  backend->Unbind();
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(backend));
}

size_t SessionPool::created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

size_t SessionPool::pooled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

}  // namespace mufuzz::evm
