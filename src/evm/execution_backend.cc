#include "evm/execution_backend.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace mufuzz::evm {

SessionBackend::SessionBackend(Host* host, BlockContext block,
                               EvmConfig config) {
  Bind(host, block, config);
}

void SessionBackend::Bind(Host* host, BlockContext block, EvmConfig config) {
  session_.emplace(host, block, config);
  session_->interpreter().set_observer(&trace_);
  trace_.Clear();
  deployed_ = {};
}

void SessionBackend::Unbind() {
  session_.reset();
  trace_.Clear();
  deployed_ = {};
}

void SessionBackend::CheckBound() const {
  if (!session_.has_value()) {
    std::fprintf(stderr,
                 "fatal: SessionBackend used before Bind() / after Unbind()\n");
    std::abort();
  }
}

Result<Address> SessionBackend::DeployContract(const Bytes& runtime_code,
                                               const Bytes& ctor_code,
                                               const Bytes& ctor_args,
                                               const Address& deployer,
                                               const U256& value) {
  CheckBound();
  return session_->Deploy(runtime_code, ctor_code, ctor_args, deployer,
                          value);
}

void SessionBackend::FundAccount(const Address& addr, const U256& balance) {
  CheckBound();
  session_->FundAccount(addr, balance);
}

void SessionBackend::MarkDeployed() {
  CheckBound();
  deployed_ = session_->Snapshot();
}

void SessionBackend::Rewind() {
  CheckBound();
  session_->Restore(deployed_);
}

ExecResult SessionBackend::Execute(const TransactionRequest& tx) {
  CheckBound();
  trace_.Clear();
  return session_->Apply(tx);
}

const std::vector<CmpRecord>& SessionBackend::cmp_records() const {
  CheckBound();
  return session_->interpreter().cmp_records();
}

const WorldState& SessionBackend::state() const {
  CheckBound();
  return session_->state();
}

std::unique_ptr<SessionBackend> SessionPool::Acquire(Rng* rng) {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.empty()) {
    ++created_;
    return std::make_unique<SessionBackend>();
  }
  size_t pick = rng != nullptr ? rng->NextBelow(free_.size())
                               : free_.size() - 1;
  std::unique_ptr<SessionBackend> backend = std::move(free_[pick]);
  free_[pick] = std::move(free_.back());
  free_.pop_back();
  return backend;
}

void SessionPool::Release(std::unique_ptr<SessionBackend> backend) {
  if (backend == nullptr) return;
  // The host the session was bound to belongs to the last campaign and may
  // already be gone; never keep a reachable reference to it in the pool.
  backend->Unbind();
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(backend));
}

size_t SessionPool::created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

size_t SessionPool::pooled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

}  // namespace mufuzz::evm
