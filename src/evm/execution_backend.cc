#include "evm/execution_backend.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace mufuzz::evm {

std::vector<SequenceOutcome> ExecutionBackend::ExecuteSequenceBatch(
    std::span<const SequencePlan> plans) {
  std::vector<SequenceOutcome> outcomes;
  outcomes.reserve(plans.size());
  for (const SequencePlan& plan : plans) {
    outcomes.push_back(ExecuteSequence(plan));
  }
  return outcomes;
}

ExecutionBackend::BatchTicket ExecutionBackend::SubmitBatch(
    std::vector<SequencePlan> plans) {
  BatchTicket ticket = next_ticket_++;
  pending_.emplace_back(ticket,
                        ExecuteSequenceBatch(std::span<const SequencePlan>(
                            plans.data(), plans.size())));
  return ticket;
}

std::vector<SequenceOutcome> ExecutionBackend::WaitBatch(BatchTicket ticket) {
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].first != ticket) continue;
    std::vector<SequenceOutcome> outcomes = std::move(pending_[i].second);
    pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(i));
    return outcomes;
  }
  std::fprintf(stderr,
               "fatal: WaitBatch(%llu) for an unknown or already-redeemed "
               "ticket\n",
               static_cast<unsigned long long>(ticket));
  std::abort();
}

SessionBackend::SessionBackend(Host* host, BlockContext block,
                               EvmConfig config) {
  Bind(host, block, config);
}

void SessionBackend::Bind(Host* host, BlockContext block, EvmConfig config) {
  host_ = host;
  session_.emplace(host, block, config);
  session_->interpreter().set_observer(&trace_);
  trace_.Clear();
  deployed_ = {};
}

void SessionBackend::Unbind() {
  session_.reset();
  host_ = nullptr;
  trace_.Clear();
  deployed_ = {};
}

void SessionBackend::CheckBound() const {
  if (!session_.has_value()) {
    std::fprintf(stderr,
                 "fatal: SessionBackend used before Bind() / after Unbind()\n");
    std::abort();
  }
}

Result<Address> SessionBackend::DeployContract(const Bytes& runtime_code,
                                               const Bytes& ctor_code,
                                               const Bytes& ctor_args,
                                               const Address& deployer,
                                               const U256& value) {
  CheckBound();
  return session_->Deploy(runtime_code, ctor_code, ctor_args, deployer,
                          value);
}

void SessionBackend::FundAccount(const Address& addr, const U256& balance) {
  CheckBound();
  session_->FundAccount(addr, balance);
}

void SessionBackend::MarkDeployed() {
  CheckBound();
  deployed_ = session_->Snapshot();
}

void SessionBackend::Rewind() {
  CheckBound();
  session_->Restore(deployed_);
}

SequenceOutcome SessionBackend::ExecuteSequence(const SequencePlan& plan) {
  CheckBound();
  Rewind();
  host_->OnSequenceStart(plan.host_seed);
  SequenceOutcome out;
  out.txs.reserve(plan.txs.size());
  trace_.Clear();
  for (const PreparedTx& ptx : plan.txs) {
    host_->OnTransactionStart(ptx.request.data);
    ExecResult result = session_->Apply(ptx.request);
    TxOutcome txo;
    txo.tag = ptx.tag;
    txo.success = result.Success();
    txo.outcome = result.outcome;
    txo.gas_used = result.gas_used;
    txo.cmps = session_->interpreter().cmp_records();
    txo.trace = std::move(trace_);
    trace_.Clear();
    out.instructions += txo.trace.instruction_count();
    out.touched_pcs.reserve(out.touched_pcs.size() +
                            txo.trace.branches().size());
    for (const BranchEvent& ev : txo.trace.branches()) {
      out.touched_pcs.push_back(ev.pc);
    }
    out.txs.push_back(std::move(txo));
  }
  return out;
}

CodeCacheStats SessionBackend::code_cache_stats() const {
  if (!session_.has_value()) return {};
  return session_->interpreter().code_cache()->stats();
}

const CodeCache* SessionBackend::code_cache() const {
  if (!session_.has_value()) return nullptr;
  return session_->interpreter().code_cache();
}

const WorldState& SessionBackend::state() const {
  CheckBound();
  return session_->state();
}

std::unique_ptr<SessionBackend> SessionPool::Acquire(Rng* rng) {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.empty()) {
    ++created_;
    return std::make_unique<SessionBackend>();
  }
  size_t pick = rng != nullptr ? rng->NextBelow(free_.size())
                               : free_.size() - 1;
  std::unique_ptr<SessionBackend> backend = std::move(free_[pick]);
  free_[pick] = std::move(free_.back());
  free_.pop_back();
  return backend;
}

void SessionPool::Release(std::unique_ptr<SessionBackend> backend) {
  if (backend == nullptr) return;
  // The host the session was bound to belongs to the last campaign and may
  // already be gone; never keep a reachable reference to it in the pool.
  backend->Unbind();
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(backend));
}

size_t SessionPool::created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

size_t SessionPool::pooled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

}  // namespace mufuzz::evm
