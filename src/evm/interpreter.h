#ifndef MUFUZZ_EVM_INTERPRETER_H_
#define MUFUZZ_EVM_INTERPRETER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/address.h"
#include "common/bytes.h"
#include "common/u256.h"
#include "evm/frame_arena.h"
#include "evm/host.h"
#include "evm/trace.h"
#include "evm/world_state.h"

namespace mufuzz::evm {

class CodeCache;
struct DecodedCode;
struct CompiledCode;

/// Which execution loop runs the frames.
enum class DispatchMode : uint8_t {
  /// Pre-decoded IR with direct-threaded (computed-goto) dispatch — the
  /// default hot path. Falls back to a switch-based loop when built with
  /// -DMUFUZZ_PORTABLE_DISPATCH or on non-GNU compilers.
  kDecoded,
  /// The original byte-switch loop, kept alive as the differential oracle:
  /// it re-derives jump targets and immediates from raw bytes, so the
  /// decoded-dispatch tests cross-check two independent decodings.
  kByteSwitch,
  /// Tiered execution: contracts start on the decoded loop and are compiled
  /// to native subroutine-threaded code (jit_compiler.h) once they cross
  /// EvmConfig::jit_threshold executions. Bit-for-bit equivalent to the
  /// other two modes; degrades to kDecoded on unsupported builds and on
  /// compile bailouts.
  kJit,
};

/// Interpreter limits. The step cap is a belt-and-braces guard on top of gas
/// so a mis-priced loop cannot wedge a fuzzing campaign.
struct EvmConfig {
  uint64_t tx_gas_limit = 10000000;
  int max_call_depth = 12;
  uint64_t max_steps = 2000000;
  DispatchMode dispatch = DispatchMode::kDecoded;
  /// kJit tier-up counter: compile a contract's code after this many frame
  /// executions of its hash (across all sessions sharing the cache). 0
  /// compiles eagerly on first execution — what the differential tests use.
  uint64_t jit_threshold = 8;
  /// Cache for pre-decoded bytecode; nullptr means CodeCache::Global() (one
  /// decode per contract per process, shared across sessions and workers).
  CodeCache* code_cache = nullptr;
};

/// A message call to execute: `to` receives the call and supplies the storage
/// context; `code_address` supplies the code (differs from `to` only for
/// DELEGATECALL).
struct MessageCall {
  Address to;
  Address code_address;
  Address caller;
  Address origin;
  U256 value;
  Bytes data;
  uint64_t gas = 0;
  bool is_static = false;
  int depth = 0;
};

/// Why an execution frame stopped.
enum class Outcome {
  kSuccess,       ///< STOP / RETURN / SELFDESTRUCT
  kRevert,        ///< REVERT
  kOutOfGas,
  kInvalidOp,     ///< INVALID or undefined opcode
  kStackError,    ///< under/overflow
  kBadJump,       ///< jump target is not a JUMPDEST
  kMemoryError,   ///< memory expansion beyond the cap
  kDepthExceeded,
  kStepLimit,
  kStaticViolation,  ///< state mutation inside STATICCALL
  kBalanceError,     ///< value transfer without funds
};

const char* OutcomeToString(Outcome outcome);

/// Result of one message call (or one transaction at depth zero).
struct ExecResult {
  Outcome outcome = Outcome::kSuccess;
  Bytes output;
  uint64_t gas_used = 0;

  bool Success() const { return outcome == Outcome::kSuccess; }
  bool Reverted() const { return outcome == Outcome::kRevert; }
};

/// The EVM bytecode interpreter with instrumentation hooks.
///
/// One instance executes transactions against a WorldState. Nested CALLs to
/// in-state contracts recurse internally; calls to code-less addresses are
/// delegated to the Host (which may re-enter via ReentryHandle). The observer
/// receives branch, call, store, overflow, and taint events — the feedback
/// channels MuFuzz's three components consume.
class Interpreter : public ReentryHandle {
 public:
  Interpreter(WorldState* state, Host* host, BlockContext block,
              EvmConfig config = EvmConfig());

  /// Observer for instrumentation events; may be nullptr.
  void set_observer(ExecObserver* observer) { observer_ = observer; }

  /// Executes a top-level message call. Reverts all state changes if the
  /// outcome is not success. Comparison records and call ids reset per call.
  ExecResult ExecuteTransaction(const MessageCall& call);

  /// Comparison records accumulated during the last ExecuteTransaction;
  /// BranchEvent::cmp_id indexes into this.
  const std::vector<CmpRecord>& cmp_records() const { return cmp_records_; }

  /// Steals the last transaction's comparison records into `out` (cleared
  /// first), handing the interpreter `out`'s warm buffer in exchange — the
  /// allocation-free alternative to copying cmp_records() per transaction.
  void TakeCmpRecords(std::vector<CmpRecord>* out) {
    out->clear();
    out->swap(cmp_records_);
  }

  /// ReentryHandle: used by adversarial hosts to call back into contracts.
  bool Reenter(const Address& target, const Address& sender,
               const U256& value, const Bytes& data, uint64_t gas) override;

  const BlockContext& block() const { return block_; }
  void set_block(const BlockContext& block) { block_ = block; }

  /// The code cache this interpreter decodes through (never null).
  CodeCache* code_cache() const { return cache_; }

 private:
  friend class Frame;
  friend struct JitExec;
  /// Runs one call frame (recursively for nested calls): resolves the
  /// callee's DecodedCode (memoized on the account, shared via the cache)
  /// and hands off to the configured dispatch loop. State snapshots for
  /// nested frames are managed by the caller of RunFrame.
  ExecResult RunFrame(const MessageCall& call);

  /// The byte-switch loop — the original interpreter, now reading the code
  /// bytes through the shared DecodedCode instead of a per-frame copy.
  ExecResult RunFrameBytes(const MessageCall& call,
                           const DecodedCode& decoded);

  /// The threaded-dispatch IR loop (interpreter_decoded.cc). Bit-for-bit
  /// equivalent to RunFrameBytes in outcome, gas, state journal, and every
  /// observer event (events carry original byte pcs, not IR indices).
  ExecResult RunFrameDecoded(const MessageCall& call,
                             const DecodedCode& decoded);

  /// Runs a frame through the compiled artifact (jit_compiler.cc). Same
  /// equivalence contract as RunFrameDecoded; complex ops call back into
  /// the same C++ paths, so journal, cmp records, and events are shared
  /// code, not re-implementations.
  ExecResult RunFrameJit(const MessageCall& call, const DecodedCode& decoded,
                         const CompiledCode& compiled);

  /// Checks out the next free frame arena (Reset, ready to use). Arenas are
  /// pooled with stack discipline — every live frame holds exactly one, so
  /// indexing by an acquisition counter stays correct under host reentry,
  /// where two frames can share a `call.depth`.
  FrameArena& AcquireFrameArena() {
    if (arena_top_ == frame_arenas_.size()) {
      frame_arenas_.push_back(std::make_unique<FrameArena>());
    }
    FrameArena& arena = *frame_arenas_[arena_top_++];
    arena.Reset();
    return arena;
  }

  /// RAII checkout of a frame arena for the duration of one RunFrame* body
  /// (they return from many places; the lease releases on every path).
  struct ArenaLease {
    explicit ArenaLease(Interpreter* interp)
        : interp(interp), arena(interp->AcquireFrameArena()) {}
    ~ArenaLease() { --interp->arena_top_; }
    ArenaLease(const ArenaLease&) = delete;
    ArenaLease& operator=(const ArenaLease&) = delete;

    Interpreter* interp;
    FrameArena& arena;
  };

  WorldState* state_;
  Host* host_;
  BlockContext block_;
  EvmConfig config_;
  CodeCache* cache_ = nullptr;
  ExecObserver* observer_ = nullptr;

  std::vector<CmpRecord> cmp_records_;
  int32_t next_call_id_ = 0;
  uint64_t steps_ = 0;
  int reenter_depth_ = 0;
  /// Reusable, uninitialized operand-stack buffers for compiled (kJit)
  /// frames, one per active call depth — a compiled frame writes every slot
  /// before reading it, so construction would be pure overhead, and the
  /// decoded loop's lazily-grown std::vector stack never pays it either.
  std::vector<std::unique_ptr<unsigned char[]>> jit_stacks_;
  /// Stack-disciplined pool of frame arenas (see FrameArena): arenas_[i]
  /// belongs to the i-th live frame on this interpreter's call stack.
  /// Capacity persists for the session lifetime, so steady-state frames
  /// reuse warm containers instead of constructing fresh ones.
  std::vector<std::unique_ptr<FrameArena>> frame_arenas_;
  size_t arena_top_ = 0;
};

}  // namespace mufuzz::evm

#endif  // MUFUZZ_EVM_INTERPRETER_H_
