#include "evm/world_state.h"

#include <utility>

namespace mufuzz::evm {

// ------------------------------------------------------------------ Storage --

const Storage::Entry* Storage::FindEntry(const U256& key) const {
  if (!spilled()) {
    for (size_t i = 0; i < inline_count_; ++i) {
      if (inline_[i].key == key) return &inline_[i];
    }
    return nullptr;
  }
  const size_t mask = table_.size() - 1;
  size_t i = U256::Hasher()(key) & mask;
  while (table_[i].live) {
    if (table_[i].key == key) return &table_[i];
    i = (i + 1) & mask;
  }
  return nullptr;
}

void Storage::EraseInline(size_t index) {
  inline_[index] = inline_[inline_count_ - 1];
  --inline_count_;
}

void Storage::EraseTable(size_t index) {
  // Backward-shift deletion keeps probe chains intact without tombstones:
  // walk forward from the hole and pull back every entry whose probe path
  // crosses it.
  const size_t mask = table_.size() - 1;
  size_t hole = index;
  size_t i = (index + 1) & mask;
  while (table_[i].live) {
    size_t ideal = U256::Hasher()(table_[i].key) & mask;
    if (((i - ideal) & mask) >= ((i - hole) & mask)) {
      table_[hole] = table_[i];
      hole = i;
    }
    i = (i + 1) & mask;
  }
  table_[hole].live = false;
  --table_live_;
}

void Storage::TableInsert(const Entry& entry) {
  if ((table_live_ + 1) * 4 > table_.size() * 3) {
    std::vector<Entry> old = std::move(table_);
    table_.assign(old.size() * 2, Entry{});
    table_live_ = 0;
    for (const Entry& e : old) {
      if (e.live) TableInsert(e);
    }
  }
  const size_t mask = table_.size() - 1;
  size_t i = U256::Hasher()(entry.key) & mask;
  while (table_[i].live) i = (i + 1) & mask;
  table_[i] = entry;
  table_[i].live = true;
  ++table_live_;
}

void Storage::MigrateToTable() {
  table_.assign(4 * kInlineCapacity, Entry{});
  table_live_ = 0;
  for (size_t i = 0; i < inline_count_; ++i) TableInsert(inline_[i]);
  inline_count_ = 0;
}

std::pair<U256, uint32_t> Storage::Exchange(const U256& key,
                                            const U256& value,
                                            uint32_t taint) {
  Entry* e = const_cast<Entry*>(FindEntry(key));
  if (e == nullptr) {
    if (value.IsZero() && taint == 0) return {U256::Zero(), 0};
    if (!value.IsZero()) ++value_count_;
    if (taint != 0) ++taint_count_;
    Entry fresh;
    fresh.key = key;
    fresh.value = value;
    fresh.taint = taint;
    if (!spilled()) {
      if (inline_count_ < kInlineCapacity) {
        inline_[inline_count_++] = fresh;
        return {U256::Zero(), 0};
      }
      MigrateToTable();
    }
    TableInsert(fresh);
    return {U256::Zero(), 0};
  }

  U256 prev = e->value;
  uint32_t prev_taint = e->taint;
  if (!prev.IsZero() && value.IsZero()) --value_count_;
  if (prev.IsZero() && !value.IsZero()) ++value_count_;
  if (prev_taint != 0 && taint == 0) --taint_count_;
  if (prev_taint == 0 && taint != 0) ++taint_count_;
  if (value.IsZero() && taint == 0) {
    if (spilled()) {
      EraseTable(static_cast<size_t>(e - table_.data()));
    } else {
      EraseInline(static_cast<size_t>(e - inline_.data()));
    }
  } else {
    e->value = value;
    e->taint = taint;
  }
  return {prev, prev_taint};
}

std::unordered_map<U256, U256, U256::Hasher> Storage::slots() const {
  std::unordered_map<U256, U256, U256::Hasher> out;
  out.reserve(value_count_);
  ForEach([&out](const Entry& e) {
    if (!e.value.IsZero()) out.emplace(e.key, e.value);
  });
  return out;
}

std::unordered_map<U256, uint32_t, U256::Hasher> Storage::taints() const {
  std::unordered_map<U256, uint32_t, U256::Hasher> out;
  out.reserve(taint_count_);
  ForEach([&out](const Entry& e) {
    if (e.taint != 0) out.emplace(e.key, e.taint);
  });
  return out;
}

bool operator==(const Storage& a, const Storage& b) {
  if (a.value_count_ != b.value_count_ || a.taint_count_ != b.taint_count_ ||
      a.live_count() != b.live_count()) {
    return false;
  }
  bool equal = true;
  a.ForEach([&](const Storage::Entry& e) {
    if (!equal) return;
    const Storage::Entry* other = b.FindEntry(e.key);
    if (other == nullptr || !(other->value == e.value) ||
        other->taint != e.taint) {
      equal = false;
    }
  });
  return equal;
}

// --------------------------------------------------------------- WorldState --

Account& WorldState::Ensure(const Address& addr) {
  auto it = accounts_.find(addr);
  if (it != accounts_.end()) return it->second;
  if (journaling()) {
    JournalEntry e;
    e.kind = JournalEntry::Kind::kCreateAccount;
    e.addr = addr;
    journal_.push_back(std::move(e));
  }
  return accounts_.try_emplace(addr).first->second;
}

void WorldState::SetBalance(const Address& addr, const U256& value) {
  Account& a = Ensure(addr);
  if (a.balance == value) return;
  if (journaling()) {
    JournalEntry e;
    e.kind = JournalEntry::Kind::kBalance;
    e.addr = addr;
    e.prev_word = a.balance;
    journal_.push_back(std::move(e));
  }
  a.balance = value;
}

bool WorldState::Transfer(const Address& from, const Address& to,
                          const U256& value) {
  if (value.IsZero()) return true;
  // Even a failed transfer brings `from` into existence (seed semantics,
  // pinned by the differential oracle). Copy the balance out; the reference
  // must not outlive the SetBalance inserts below.
  U256 src = Ensure(from).balance;
  if (src < value) return false;
  SetBalance(from, src - value);
  // Read `to` only after debiting `from` so a self-transfer nets to zero.
  SetBalance(to, GetBalance(to) + value);
  return true;
}

void WorldState::SetCode(const Address& addr, Bytes code) {
  Account& a = Ensure(addr);
  if (a.code == code) return;
  if (journaling()) {
    JournalEntry e;
    e.kind = JournalEntry::Kind::kCode;
    e.addr = addr;
    e.prev_code = std::move(a.code);
    journal_.push_back(std::move(e));
  }
  a.code = std::move(code);
  a.decoded.reset();  // the memoized IR no longer matches the bytes
}

void WorldState::SetStorage(const Address& addr, const U256& key,
                            const U256& value, uint32_t taint) {
  Account& a = Ensure(addr);
  auto [prev, prev_taint] = a.storage.Exchange(key, value, taint);
  if (prev == value && prev_taint == taint) return;  // no-op: nothing to undo
  if (journaling()) {
    JournalEntry e;
    e.kind = JournalEntry::Kind::kStorage;
    e.addr = addr;
    e.key = key;
    e.prev_word = prev;
    e.prev_taint = prev_taint;
    journal_.push_back(std::move(e));
  }
}

void WorldState::MarkSelfDestructed(const Address& addr) {
  Account& a = Ensure(addr);
  if (a.self_destructed) return;
  if (journaling()) {
    JournalEntry e;
    e.kind = JournalEntry::Kind::kSelfDestructed;
    e.addr = addr;
    e.prev_flag = false;
    journal_.push_back(std::move(e));
  }
  a.self_destructed = true;
}

size_t WorldState::Snapshot() {
  marks_.push_back(journal_.size());
  return marks_.size() - 1;
}

void WorldState::UnwindTo(size_t mark) {
  while (journal_.size() > mark) {
    JournalEntry& e = journal_.back();
    auto it = accounts_.find(e.addr);
    switch (e.kind) {
      case JournalEntry::Kind::kCreateAccount:
        if (it != accounts_.end()) accounts_.erase(it);
        break;
      case JournalEntry::Kind::kBalance:
        if (it != accounts_.end()) it->second.balance = e.prev_word;
        break;
      case JournalEntry::Kind::kStorage:
        if (it != accounts_.end()) {
          it->second.storage.Store(e.key, e.prev_word, e.prev_taint);
        }
        break;
      case JournalEntry::Kind::kCode:
        if (it != accounts_.end()) {
          it->second.code = std::move(e.prev_code);
          it->second.decoded.reset();
        }
        break;
      case JournalEntry::Kind::kSelfDestructed:
        if (it != accounts_.end()) it->second.self_destructed = e.prev_flag;
        break;
    }
    journal_.pop_back();
  }
}

void WorldState::RevertTo(size_t id) {
  if (id >= marks_.size()) return;
  UnwindTo(marks_[id]);
  marks_.resize(id);
}

void WorldState::Commit(size_t id) {
  if (id >= marks_.size()) return;
  marks_.resize(id);
  // With no live snapshot nothing can ever unwind these entries; drop them
  // so sessions that commit at top level don't grow the journal unboundedly.
  if (marks_.empty()) journal_.clear();
}

void WorldState::RestoreKeep(size_t id) {
  if (id >= marks_.size()) return;
  UnwindTo(marks_[id]);
  marks_.resize(id + 1);
}

}  // namespace mufuzz::evm
