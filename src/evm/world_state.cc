#include "evm/world_state.h"

#include <utility>

namespace mufuzz::evm {

Account& WorldState::Ensure(const Address& addr) {
  auto it = accounts_.find(addr);
  if (it != accounts_.end()) return it->second;
  if (journaling()) {
    JournalEntry e;
    e.kind = JournalEntry::Kind::kCreateAccount;
    e.addr = addr;
    journal_.push_back(std::move(e));
  }
  return accounts_.try_emplace(addr).first->second;
}

void WorldState::SetBalance(const Address& addr, const U256& value) {
  Account& a = Ensure(addr);
  if (a.balance == value) return;
  if (journaling()) {
    JournalEntry e;
    e.kind = JournalEntry::Kind::kBalance;
    e.addr = addr;
    e.prev_word = a.balance;
    journal_.push_back(std::move(e));
  }
  a.balance = value;
}

bool WorldState::Transfer(const Address& from, const Address& to,
                          const U256& value) {
  if (value.IsZero()) return true;
  // Even a failed transfer brings `from` into existence (seed semantics,
  // pinned by the differential oracle). Copy the balance out; the reference
  // must not outlive the SetBalance inserts below.
  U256 src = Ensure(from).balance;
  if (src < value) return false;
  SetBalance(from, src - value);
  // Read `to` only after debiting `from` so a self-transfer nets to zero.
  SetBalance(to, GetBalance(to) + value);
  return true;
}

void WorldState::SetCode(const Address& addr, Bytes code) {
  Account& a = Ensure(addr);
  if (a.code == code) return;
  if (journaling()) {
    JournalEntry e;
    e.kind = JournalEntry::Kind::kCode;
    e.addr = addr;
    e.prev_code = std::move(a.code);
    journal_.push_back(std::move(e));
  }
  a.code = std::move(code);
  a.decoded.reset();  // the memoized IR no longer matches the bytes
}

void WorldState::SetStorage(const Address& addr, const U256& key,
                            const U256& value, uint32_t taint) {
  Account& a = Ensure(addr);
  auto [prev, prev_taint] = a.storage.Exchange(key, value, taint);
  if (prev == value && prev_taint == taint) return;  // no-op: nothing to undo
  if (journaling()) {
    JournalEntry e;
    e.kind = JournalEntry::Kind::kStorage;
    e.addr = addr;
    e.key = key;
    e.prev_word = prev;
    e.prev_taint = prev_taint;
    journal_.push_back(std::move(e));
  }
}

void WorldState::MarkSelfDestructed(const Address& addr) {
  Account& a = Ensure(addr);
  if (a.self_destructed) return;
  if (journaling()) {
    JournalEntry e;
    e.kind = JournalEntry::Kind::kSelfDestructed;
    e.addr = addr;
    e.prev_flag = false;
    journal_.push_back(std::move(e));
  }
  a.self_destructed = true;
}

size_t WorldState::Snapshot() {
  marks_.push_back(journal_.size());
  return marks_.size() - 1;
}

void WorldState::UnwindTo(size_t mark) {
  while (journal_.size() > mark) {
    JournalEntry& e = journal_.back();
    auto it = accounts_.find(e.addr);
    switch (e.kind) {
      case JournalEntry::Kind::kCreateAccount:
        if (it != accounts_.end()) accounts_.erase(it);
        break;
      case JournalEntry::Kind::kBalance:
        if (it != accounts_.end()) it->second.balance = e.prev_word;
        break;
      case JournalEntry::Kind::kStorage:
        if (it != accounts_.end()) {
          it->second.storage.Store(e.key, e.prev_word, e.prev_taint);
        }
        break;
      case JournalEntry::Kind::kCode:
        if (it != accounts_.end()) {
          it->second.code = std::move(e.prev_code);
          it->second.decoded.reset();
        }
        break;
      case JournalEntry::Kind::kSelfDestructed:
        if (it != accounts_.end()) it->second.self_destructed = e.prev_flag;
        break;
    }
    journal_.pop_back();
  }
}

void WorldState::RevertTo(size_t id) {
  if (id >= marks_.size()) return;
  UnwindTo(marks_[id]);
  marks_.resize(id);
}

void WorldState::Commit(size_t id) {
  if (id >= marks_.size()) return;
  marks_.resize(id);
  // With no live snapshot nothing can ever unwind these entries; drop them
  // so sessions that commit at top level don't grow the journal unboundedly.
  if (marks_.empty()) journal_.clear();
}

void WorldState::RestoreKeep(size_t id) {
  if (id >= marks_.size()) return;
  UnwindTo(marks_[id]);
  marks_.resize(id + 1);
}

}  // namespace mufuzz::evm
