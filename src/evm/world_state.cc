#include "evm/world_state.h"

namespace mufuzz::evm {

bool WorldState::Transfer(const Address& from, const Address& to,
                          const U256& value) {
  if (value.IsZero()) return true;
  Account& src = GetOrCreate(from);
  if (src.balance < value) return false;
  src.balance = src.balance - value;
  GetOrCreate(to).balance = GetOrCreate(to).balance + value;
  return true;
}

size_t WorldState::Snapshot() {
  snapshots_.push_back(accounts_);
  return snapshots_.size() - 1;
}

void WorldState::RevertTo(size_t id) {
  if (id >= snapshots_.size()) return;
  accounts_ = std::move(snapshots_[id]);
  snapshots_.resize(id);
}

void WorldState::Commit(size_t id) {
  if (id >= snapshots_.size()) return;
  snapshots_.resize(id);
}

void WorldState::RestoreKeep(size_t id) {
  if (id >= snapshots_.size()) return;
  accounts_ = snapshots_[id];
  snapshots_.resize(id + 1);
}

}  // namespace mufuzz::evm
