#ifndef MUFUZZ_EVM_EXECUTION_BACKEND_H_
#define MUFUZZ_EVM_EXECUTION_BACKEND_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "evm/code_cache.h"
#include "evm/executor.h"
#include "evm/trace.h"

namespace mufuzz::evm {

/// One transaction of a planned sequence. `tag` is an opaque caller label
/// carried through to the matching TxOutcome (the fuzzer stores the
/// transaction's position in the un-encoded sequence, so feedback indexes
/// stay correct when unencodable entries were skipped at planning time).
struct PreparedTx {
  TransactionRequest request;
  int tag = 0;
};

/// A fully encoded, self-contained unit of execution work: every transaction
/// of one sequence plus the per-sequence environment seed the backend passes
/// to Host::OnSequenceStart. Plans carry no pointers into fuzzer state, so
/// they can be queued, shipped to worker threads, and executed in any order.
struct SequencePlan {
  uint64_t host_seed = 0;
  std::vector<PreparedTx> txs;
};

/// What one transaction of a sequence produced. A self-contained value: the
/// full event trace and the comparison records BranchEvent::cmp_id indexes
/// into are copied out of the interpreter, so outcomes survive the backend
/// moving on to other work (unlike the retired trace()-accessor contract,
/// which exposed a mutable accumulator valid only until the next Execute).
struct TxOutcome {
  int tag = 0;
  bool success = false;
  Outcome outcome = Outcome::kSuccess;
  uint64_t gas_used = 0;
  TraceRecorder trace;
  std::vector<CmpRecord> cmps;

  /// One oversized sequence must not pin its peak buffers in the recycle
  /// pools forever; anything past this per-vector capacity is released.
  static constexpr size_t kMaxRetainedEvents = 1 << 14;

  /// Clears payload but keeps (bounded) heap capacity so a recycled outcome
  /// records the next transaction without reallocating.
  void ResetForReuse() {
    tag = 0;
    success = false;
    outcome = Outcome::kSuccess;
    gas_used = 0;
    trace.Clear();
    trace.ShrinkIfOversized(kMaxRetainedEvents);
    cmps.clear();
    if (cmps.capacity() > kMaxRetainedEvents) cmps.shrink_to_fit();
  }
};

/// Everything one executed SequencePlan produced, in transaction order.
struct SequenceOutcome {
  std::vector<TxOutcome> txs;
  /// Instructions summed over all transactions.
  uint64_t instructions = 0;
  /// Branch pcs executed, flattened across transactions (trace order).
  std::vector<uint32_t> touched_pcs;
  /// Warm TxOutcome slots parked when a shorter sequence reuses this
  /// outcome; ResetForReuse pulls from here before allocating fresh slots,
  /// so varying sequence lengths don't defeat recycling.
  std::vector<TxOutcome> spare_txs;

  /// Re-shapes the outcome for `tx_count` transactions, recycling every
  /// transaction slot's trace/cmp capacity.
  void ResetForReuse(size_t tx_count) {
    while (txs.size() > tx_count) {
      spare_txs.push_back(std::move(txs.back()));
      txs.pop_back();
    }
    while (txs.size() < tx_count) {
      if (!spare_txs.empty()) {
        txs.push_back(std::move(spare_txs.back()));
        spare_txs.pop_back();
      } else {
        txs.emplace_back();
      }
    }
    for (TxOutcome& t : txs) t.ResetForReuse();
    instructions = 0;
    touched_pcs.clear();
  }
};

/// The execution substrate a fuzzing campaign drives: deploy once, mark the
/// deployed state, then execute arbitrarily many sequence plans, each from a
/// fresh rewind of the mark. Pulling this behind an interface keeps the
/// fuzzer layer ignorant of how state is hosted (an in-process ChainSession,
/// a pool of worker sessions behind a queue, or an out-of-process EVM later)
/// and lets worker pools recycle sessions between jobs.
///
/// Execution is plan-in / outcome-out: callers hand over self-contained
/// SequencePlans and receive self-contained SequenceOutcomes. The mutable
/// "trace of the most recent Execute (and anything since)" accessors are
/// gone from this interface — that contract cannot survive concurrency.
///
/// Ordering contract: ExecuteSequenceBatch and SubmitBatch/WaitBatch return
/// outcomes in submission order, and every plan is executed in isolation
/// (rewound to the MarkDeployed point, host re-armed via OnSequenceStart),
/// so the outcome of plan i is independent of the other plans in the batch,
/// of batch boundaries, and of which worker executes it.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Rebinds the backend to `host` and discards all session state. A backend
  /// must be bound before any other call; rebinding starts a fresh
  /// deploy-once/rewind-many cycle (the pool-reuse path).
  virtual void Bind(Host* host, BlockContext block = BlockContext(),
                    EvmConfig config = EvmConfig()) = 0;

  /// Drops the session and every reference to the host it was bound to.
  /// Campaigns unbind non-owned backends on destruction (their host dies
  /// with them), and the pool unbinds on Release, so a recycled backend can
  /// never reach a dead host.
  virtual void Unbind() = 0;

  /// Deploys a contract (see ChainSession::Deploy).
  virtual Result<Address> DeployContract(const Bytes& runtime_code,
                                         const Bytes& ctor_code,
                                         const Bytes& ctor_args,
                                         const Address& deployer,
                                         const U256& value) = 0;

  virtual void FundAccount(const Address& addr, const U256& balance) = 0;

  /// Marks the current session state (world state + block context) as the
  /// point every sequence plan starts from. Typically called right after
  /// deployment. O(1) in the in-process backend (a journal mark).
  virtual void MarkDeployed() = 0;

  /// Rewinds to the MarkDeployed() point. Sequence execution rewinds
  /// implicitly per plan; this exists for setup code and tests. Cost is
  /// proportional to the state touched since the mark (journal unwind).
  virtual void Rewind() = 0;

  /// Executes one plan from a fresh rewind: arms the host
  /// (OnSequenceStart(plan.host_seed), then OnTransactionStart per tx) and
  /// applies each transaction, collecting a self-contained outcome.
  virtual SequenceOutcome ExecuteSequence(const SequencePlan& plan) = 0;

  /// Executes one plan into a caller-provided outcome slot, reusing its heap
  /// capacity. Semantically identical to `*out = ExecuteSequence(plan)`; the
  /// in-process backend overrides it with a swap-based implementation that
  /// makes the steady-state hot path allocation-free.
  virtual void ExecuteSequenceInto(const SequencePlan& plan,
                                   SequenceOutcome* out) {
    *out = ExecuteSequence(plan);
  }

  /// Executes `plans` and returns their outcomes in submission order.
  /// Default: a serial loop over ExecuteSequence; concurrent backends
  /// override (or inherit via SubmitBatch) and may execute out of order —
  /// the returned vector is always in submission order.
  virtual std::vector<SequenceOutcome> ExecuteSequenceBatch(
      std::span<const SequencePlan> plans);

  /// Handle for an in-flight batch.
  using BatchTicket = uint64_t;

  /// Submits a batch for (possibly asynchronous) execution and returns a
  /// ticket to redeem with WaitBatch. Any number of tickets may be
  /// outstanding at once — the speculative fan-out loop keeps one wave per
  /// parent in flight — and implementations must not require redemption in
  /// submission order. The default implementation executes synchronously at
  /// submit time and stashes the outcomes, which makes the pipelined
  /// campaign loop run unmodified — and bit-for-bit identically — over a
  /// plain in-process backend.
  virtual BatchTicket SubmitBatch(std::vector<SequencePlan> plans);

  /// Blocks until the ticket's batch completed and returns its outcomes in
  /// submission order. Each ticket may be redeemed exactly once, in any
  /// order relative to other outstanding tickets.
  virtual std::vector<SequenceOutcome> WaitBatch(BatchTicket ticket);

  /// Returns redeemed outcome buffers to the backend's reuse pool; the next
  /// SubmitBatch draws warm buffers from it instead of allocating. Client
  /// thread only (the thread that calls SubmitBatch/WaitBatch), so the pools
  /// need no locking. Pools are bounded; excess buffers are simply freed.
  void RecycleOutcomes(std::vector<SequenceOutcome> outcomes);

  /// Hands back the plans of a recently redeemed batch so the planner can
  /// reuse their encoded-calldata capacity. Empty when none are stashed.
  /// Client thread only.
  std::vector<SequencePlan> TakeSpentPlans();

  /// Execution workers behind this backend (1 for in-process backends);
  /// callers may use it to size waves.
  virtual int worker_count() const { return 1; }

  /// Counters of the code cache this backend decodes through (zeros when
  /// unbound). Observability only: the cache is typically the process-wide
  /// one, so hits/misses aggregate across every session sharing it.
  virtual CodeCacheStats code_cache_stats() const { return {}; }

  virtual const WorldState& state() const = 0;

 protected:
  /// Draws a warm outcome buffer of exactly `n` elements from the recycle
  /// pool (allocating only what the pool can't supply). Client thread only.
  std::vector<SequenceOutcome> AcquireOutcomeBuffer(size_t n);
  /// Parks a redeemed batch's plans for TakeSpentPlans. Client thread only.
  void StashSpentPlans(std::vector<SequencePlan> plans);

  /// Stash for the synchronous SubmitBatch/WaitBatch default.
  struct PendingBatch {
    BatchTicket ticket = 0;
    std::vector<SequencePlan> plans;
    std::vector<SequenceOutcome> outcomes;
  };
  std::vector<PendingBatch> pending_;
  BatchTicket next_ticket_ = 1;

 private:
  /// Caps every recycle pool; beyond this, buffers are dropped on the floor
  /// (correctness never depends on recycling).
  static constexpr size_t kMaxPooledBuffers = 16;

  std::vector<std::vector<SequenceOutcome>> outcome_pool_;
  std::vector<SequenceOutcome> spare_outcomes_;
  std::vector<std::vector<SequencePlan>> spent_plans_;
};

/// In-process backend: a ChainSession plus a TraceRecorder wired as its
/// observer (both internal — outcomes are copied out per transaction).
/// Bind() reconstructs the session in place, so one SessionBackend can serve
/// many campaigns back to back without reallocation churn at the call sites
/// that hold it.
class SessionBackend : public ExecutionBackend {
 public:
  /// Constructs an unbound backend (the pool path); call Bind() before use.
  SessionBackend() = default;

  /// Convenience: constructs and binds in one step.
  explicit SessionBackend(Host* host, BlockContext block = BlockContext(),
                          EvmConfig config = EvmConfig());

  void Bind(Host* host, BlockContext block = BlockContext(),
            EvmConfig config = EvmConfig()) override;
  void Unbind() override;

  Result<Address> DeployContract(const Bytes& runtime_code,
                                 const Bytes& ctor_code,
                                 const Bytes& ctor_args,
                                 const Address& deployer,
                                 const U256& value) override;

  void FundAccount(const Address& addr, const U256& balance) override;
  void MarkDeployed() override;
  void Rewind() override;
  SequenceOutcome ExecuteSequence(const SequencePlan& plan) override;
  /// The allocation-free primitive: trace buffers ping-pong between the
  /// internal recorder and the outcome slot via swap, and comparison records
  /// are stolen from the interpreter instead of copied.
  void ExecuteSequenceInto(const SequencePlan& plan,
                           SequenceOutcome* out) override;

  CodeCacheStats code_cache_stats() const override;

  const WorldState& state() const override;

  bool bound() const { return session_.has_value(); }
  /// Escape hatch for callers that need the raw session (tests, tooling).
  ChainSession& session() { return *session_; }
  /// The cache this backend's interpreter decodes (and JIT-compiles)
  /// through; nullptr when unbound. Adapters aggregating stats across
  /// replicas use the identity to avoid double-counting a shared cache.
  const CodeCache* code_cache() const;

 private:
  /// Aborts with a diagnostic when used before Bind() — a contract
  /// violation that must not degrade to silent UB in release builds.
  void CheckBound() const;

  TraceRecorder trace_;
  Host* host_ = nullptr;
  std::optional<ChainSession> session_;
  ChainSession::SessionSnapshot deployed_{};
};

/// Thread-safe pool of reusable SessionBackends. Workers lease a backend for
/// the lifetime of a job (or a whole job stream) and return it afterwards;
/// leased backends come back unbound-in-spirit — the next campaign's Bind()
/// wipes them — so recycling never leaks state across jobs.
class SessionPool {
 public:
  SessionPool() = default;

  /// Leases a backend: a recycled one when available, otherwise fresh.
  /// `rng` (optional, worker-local) picks among free slots; it never
  /// influences execution results.
  std::unique_ptr<SessionBackend> Acquire(Rng* rng = nullptr);

  /// Returns a leased backend to the pool.
  void Release(std::unique_ptr<SessionBackend> backend);

  size_t created() const;
  size_t pooled() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SessionBackend>> free_;
  size_t created_ = 0;
};

}  // namespace mufuzz::evm

#endif  // MUFUZZ_EVM_EXECUTION_BACKEND_H_
