#ifndef MUFUZZ_EVM_EXECUTION_BACKEND_H_
#define MUFUZZ_EVM_EXECUTION_BACKEND_H_

#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "evm/executor.h"
#include "evm/trace.h"

namespace mufuzz::evm {

/// The execution substrate a fuzzing campaign drives: deploy once, mark the
/// deployed state, then rewind-and-execute arbitrarily many times. Pulling
/// this behind an interface keeps the fuzzer layer ignorant of how state is
/// hosted (an in-process ChainSession today; sharded or out-of-process
/// backends later) and lets worker pools recycle sessions between jobs.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Rebinds the backend to `host` and discards all session state. A backend
  /// must be bound before any other call; rebinding starts a fresh
  /// deploy-once/rewind-many cycle (the pool-reuse path).
  virtual void Bind(Host* host, BlockContext block = BlockContext(),
                    EvmConfig config = EvmConfig()) = 0;

  /// Drops the session and every reference to the host it was bound to.
  /// Campaigns unbind non-owned backends on destruction (their host dies
  /// with them), and the pool unbinds on Release, so a recycled backend can
  /// never reach a dead host.
  virtual void Unbind() = 0;

  /// Deploys a contract (see ChainSession::Deploy).
  virtual Result<Address> DeployContract(const Bytes& runtime_code,
                                         const Bytes& ctor_code,
                                         const Bytes& ctor_args,
                                         const Address& deployer,
                                         const U256& value) = 0;

  virtual void FundAccount(const Address& addr, const U256& balance) = 0;

  /// Marks the current session state (world state + block context) as the
  /// point Rewind() returns to. Typically called right after deployment.
  /// O(1) in the in-process backend (a journal mark, not a state copy).
  virtual void MarkDeployed() = 0;

  /// Rewinds to the MarkDeployed() point. May be called any number of times.
  /// Cost is proportional to the state the transactions since the mark
  /// touched (journal unwind), not to total state size.
  virtual void Rewind() = 0;

  /// Clears the per-transaction trace and applies one transaction.
  virtual ExecResult Execute(const TransactionRequest& tx) = 0;

  /// Trace of the most recent Execute() (and anything since).
  virtual const TraceRecorder& trace() const = 0;

  /// Comparison records backing the most recent transaction's branch events.
  virtual const std::vector<CmpRecord>& cmp_records() const = 0;

  virtual const WorldState& state() const = 0;
};

/// In-process backend: a ChainSession plus a TraceRecorder wired as its
/// observer. Bind() reconstructs the session in place, so one SessionBackend
/// can serve many campaigns back to back without reallocation churn at the
/// call sites that hold it.
class SessionBackend : public ExecutionBackend {
 public:
  /// Constructs an unbound backend (the pool path); call Bind() before use.
  SessionBackend() = default;

  /// Convenience: constructs and binds in one step.
  explicit SessionBackend(Host* host, BlockContext block = BlockContext(),
                          EvmConfig config = EvmConfig());

  void Bind(Host* host, BlockContext block = BlockContext(),
            EvmConfig config = EvmConfig()) override;
  void Unbind() override;

  Result<Address> DeployContract(const Bytes& runtime_code,
                                 const Bytes& ctor_code,
                                 const Bytes& ctor_args,
                                 const Address& deployer,
                                 const U256& value) override;

  void FundAccount(const Address& addr, const U256& balance) override;
  void MarkDeployed() override;
  void Rewind() override;
  ExecResult Execute(const TransactionRequest& tx) override;

  const TraceRecorder& trace() const override { return trace_; }
  const std::vector<CmpRecord>& cmp_records() const override;
  const WorldState& state() const override;

  bool bound() const { return session_.has_value(); }
  /// Escape hatch for callers that need the raw session (tests, tooling).
  ChainSession& session() { return *session_; }

 private:
  /// Aborts with a diagnostic when used before Bind() — a contract
  /// violation that must not degrade to silent UB in release builds.
  void CheckBound() const;

  TraceRecorder trace_;
  std::optional<ChainSession> session_;
  ChainSession::SessionSnapshot deployed_{};
};

/// Thread-safe pool of reusable SessionBackends. Workers lease a backend for
/// the lifetime of a job (or a whole job stream) and return it afterwards;
/// leased backends come back unbound-in-spirit — the next campaign's Bind()
/// wipes them — so recycling never leaks state across jobs.
class SessionPool {
 public:
  SessionPool() = default;

  /// Leases a backend: a recycled one when available, otherwise fresh.
  /// `rng` (optional, worker-local) picks among free slots; it never
  /// influences execution results.
  std::unique_ptr<SessionBackend> Acquire(Rng* rng = nullptr);

  /// Returns a leased backend to the pool.
  void Release(std::unique_ptr<SessionBackend> backend);

  size_t created() const;
  size_t pooled() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SessionBackend>> free_;
  size_t created_ = 0;
};

}  // namespace mufuzz::evm

#endif  // MUFUZZ_EVM_EXECUTION_BACKEND_H_
