// Baseline JIT: compiles DecodedCode (evm/code_cache.h) into native x86-64
// subroutine-threaded code. The design keeps the equivalence contract of the
// decoded loop intact (see interpreter_decoded.cc): every per-IrOp helper
// below is a line-for-line transliteration of the corresponding decoded
// handler — same bookkeeping order (step limit, OnStep, gas charge), same
// stack-check placement, same gas accounting on every failure path, same
// observer events carrying original byte pcs. What the emitted code buys is
// the removal of the dispatch indirection: straight-line hot ops (PUSH, POP,
// DUP, SWAP, JUMPDEST, fused PUSH+JUMP, folded PUSH+PUSH+arith) and the
// per-original-instruction bookkeeping are inlined as native code, fused
// static jumps become direct branches, and everything else is a direct call
// to its helper — no dispatch table, no ip bookkeeping on the fast path.
//
// Register model of the emitted function (SysV x86-64):
//   rbx  = JitFrameRaw* (callee-saved, loaded once in the prologue)
//   rax/rcx/rdx/rsi/rdi/r8 + xmm0-5 = scratch
// Helpers are `uint32_t fn(JitFrameRaw*, const DecodedInsn*)` returning a
// control code (continue / static branch / dynamic branch / done). Dynamic
// jumps dispatch through a per-insn native-address table.

#include "evm/jit_compiler.h"

#include <cstddef>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/keccak.h"
#include "evm/code_cache.h"
#include "evm/interpreter.h"
#include "evm/memory.h"
#include "evm/stack.h"
#include "evm/taint.h"

namespace mufuzz::evm {

bool JitAvailable() {
#ifdef MUFUZZ_JIT_SUPPORTED
  return true;
#else
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Frame layout shared with the emitted code.
// ---------------------------------------------------------------------------

namespace {

constexpr uint8_t kOffStack = 0;
constexpr uint8_t kOffSp = 8;
constexpr uint8_t kOffGas = 16;
constexpr uint8_t kOffStepsPtr = 24;
constexpr uint8_t kOffMaxSteps = 32;
constexpr uint8_t kOffObserver = 40;
constexpr uint8_t kOffJumpIp = 48;
constexpr uint8_t kOffChecked = 56;
constexpr uint8_t kOffCallerGuard = 64;
constexpr uint8_t kOffDepth = 72;

static_assert(offsetof(JitFrameRaw, stack) == kOffStack);
static_assert(offsetof(JitFrameRaw, sp) == kOffSp);
static_assert(offsetof(JitFrameRaw, gas) == kOffGas);
static_assert(offsetof(JitFrameRaw, steps_ptr) == kOffStepsPtr);
static_assert(offsetof(JitFrameRaw, max_steps) == kOffMaxSteps);
static_assert(offsetof(JitFrameRaw, observer) == kOffObserver);
static_assert(offsetof(JitFrameRaw, jump_ip) == kOffJumpIp);
static_assert(offsetof(JitFrameRaw, checked) == kOffChecked);
static_assert(offsetof(JitFrameRaw, caller_guard) == kOffCallerGuard);
static_assert(offsetof(JitFrameRaw, depth) == kOffDepth);

// The emitted push/dup/swap sequences bake in the Word layout.
static_assert(sizeof(Word) == 48);
static_assert(offsetof(Word, value) == 0);
static_assert(offsetof(Word, taint) == 32);
static_assert(offsetof(Word, cmp_id) == 36);
static_assert(offsetof(Word, call_id) == 40);

// Helper control codes (eax on return from a helper call).
constexpr uint32_t kCtlNext = 0;     ///< fall through to the next insn
constexpr uint32_t kCtlStatic = 1;   ///< branch to ins->jump_target
constexpr uint32_t kCtlDynamic = 2;  ///< branch to frame->jump_ip
constexpr uint32_t kCtlDone = 3;     ///< frame->result holds the ExecResult

}  // namespace

// ---------------------------------------------------------------------------
// JitExec: the C++ half of a compiled frame. Friend of Interpreter.
// ---------------------------------------------------------------------------

/// Full per-frame state. JitFrameRaw must stay the first member: emitted
/// code addresses the raw prefix, helpers recover the full frame from it.
struct JitExec {
  using MemTag = MemTaintMap::Tag;

  struct Frame {
    JitFrameRaw raw;
    Interpreter* it = nullptr;
    const MessageCall* call = nullptr;
    const DecodedCode* decoded = nullptr;
    // Pooled frame state (see FrameArena): the arena this frame checked
    // out, so compiled frames reuse warm containers exactly like both
    // interpreter loops. A pointer (not references) keeps Frame standard
    // layout for the raw-prefix offsetof contract below.
    FrameArena* arena = nullptr;
    ExecResult result;

    Memory& memory() const { return arena->memory; }
    MemTaintMap& mem_taint() const { return arena->mem_taint; }
    Bytes& return_data() const { return arena->return_data; }
  };

  static Frame& F(JitFrameRaw* raw) {
    static_assert(offsetof(Frame, raw) == 0);
    return *reinterpret_cast<Frame*>(raw);
  }
  static Word* Stk(Frame& f) { return static_cast<Word*>(f.raw.stack); }

  // -- Failure results, matching the decoded loop's lambdas exactly. -------
  static uint32_t FailOutOfGas(Frame& f) {
    f.result = ExecResult{Outcome::kOutOfGas, {}, f.call->gas};
    return kCtlDone;
  }
  static uint32_t FailStack(Frame& f) {
    f.result = ExecResult{Outcome::kStackError, {}, f.call->gas - f.raw.gas};
    return kCtlDone;
  }
  static uint32_t FailMem(Frame& f) {
    f.result = ExecResult{Outcome::kMemoryError, {}, f.call->gas - f.raw.gas};
    return kCtlDone;
  }
  static uint32_t FailBadJump(Frame& f) {
    f.result = ExecResult{Outcome::kBadJump, {}, f.call->gas - f.raw.gas};
    return kCtlDone;
  }
  static uint32_t FailStepLimit(Frame& f) {
    f.result = ExecResult{Outcome::kStepLimit, {}, f.call->gas - f.raw.gas};
    return kCtlDone;
  }

  static bool Charge(Frame& f, uint64_t amount) {
    if (f.raw.gas < amount) return false;
    f.raw.gas -= amount;
    return true;
  }

  /// Per-original-instruction bookkeeping in the byte loop's exact order:
  /// step-limit bump/check, OnStep, gas charge. False = f.result is set.
  /// Reads the raw-frame mirrors (steps_ptr/observer/depth) rather than
  /// chasing Interpreter members — helpers run once per op, and the mirrors
  /// are pinned for the frame's lifetime in Run.
  static bool Bookkeep(Frame& f, uint32_t pc, uint8_t opcode, uint16_t gas) {
    if (++*f.raw.steps_ptr > f.raw.max_steps) {
      FailStepLimit(f);
      return false;
    }
    if (f.raw.observer != nullptr) {
      static_cast<ExecObserver*>(f.raw.observer)
          ->OnStep(pc, opcode, f.raw.depth);
    }
    if (!Charge(f, gas)) {
      FailOutOfGas(f);
      return false;
    }
    return true;
  }

  /// Handler prologue for unfused instructions (PRELUDE in the decoded
  /// loop): bookkeeping plus the checked-mode arity test.
  static bool Prelude(Frame& f, const DecodedInsn* ins) {
    if (!Bookkeep(f, ins->pc, ins->opcode, ins->gas)) return false;
    if (f.raw.checked && f.raw.sp < static_cast<uint64_t>(ins->inputs)) {
      FailStack(f);
      return false;
    }
    return true;
  }

  // -- Raw-stack accessors (the Stack class equivalents). -------------------
  static Word PopW(Frame& f) { return Stk(f)[--f.raw.sp]; }
  static const Word& TopW(Frame& f, size_t depth = 0) {
    return Stk(f)[f.raw.sp - 1 - depth];
  }
  /// PUSH_W: checked-mode overflow test, unchecked otherwise.
  static bool PushW(Frame& f, const Word& w) {
    if (f.raw.checked && f.raw.sp >= Stack::kMaxDepth) {
      FailStack(f);
      return false;
    }
    Stk(f)[f.raw.sp++] = w;
    return true;
  }

  // -- Word-granular memory instrumentation (identical to the loops). ------
  static MemTag MemTagLoad(Frame& f, uint64_t offset) {
    MemTag tag;
    const MemTag* found = f.mem_taint().Find(offset / 32);
    if (found != nullptr) tag = *found;
    if (offset % 32 != 0) {
      found = f.mem_taint().Find(offset / 32 + 1);
      if (found != nullptr) {
        tag.taint |= found->taint;
        tag.call_id = -1;  // misaligned: call identity is lost
      }
    }
    return tag;
  }
  static void MemTaintStore(Frame& f, uint64_t offset, uint64_t len,
                            uint32_t taint, int32_t call_id = -1) {
    if (len == 0) return;
    for (uint64_t w = offset / 32; w <= (offset + len - 1) / 32; ++w) {
      if (taint == 0 && call_id < 0) {
        f.mem_taint().Erase(w);
      } else {
        f.mem_taint().Set(w, MemTag{taint, call_id});
      }
    }
  }
  static uint32_t MemTaintRange(Frame& f, uint64_t offset, uint64_t len) {
    uint32_t t = 0;
    if (len == 0) return t;
    for (uint64_t w = offset / 32; w <= (offset + len - 1) / 32; ++w) {
      const MemTag* found = f.mem_taint().Find(w);
      if (found != nullptr) t |= found->taint;
    }
    return t;
  }

  // -- Observer thunks the emitted bookkeeping calls directly. -------------
  static void ThunkOnStep(JitFrameRaw* raw, uint32_t pc, uint32_t opcode) {
    Frame& f = F(raw);
    f.it->observer_->OnStep(pc, static_cast<uint8_t>(opcode),
                            f.call->depth);
  }
  static void ThunkOnJump(JitFrameRaw* raw, uint32_t from, uint32_t to) {
    Frame& f = F(raw);
    f.it->observer_->OnJump(from, to, f.call->depth);
  }
  /// Shared bail target of the emitted step-limit/gas/stack/jump checks.
  static void ThunkFail(JitFrameRaw* raw, uint32_t kind) {
    Frame& f = F(raw);
    switch (kind) {
      case 0:
        FailStepLimit(f);
        break;
      case 1:
        FailOutOfGas(f);
        break;
      case 2:
        FailStack(f);
        break;
      default:
        FailBadJump(f);
        break;
    }
  }

  // -- Per-IrOp helpers: transliterations of interpreter_decoded.cc. -------

  static uint32_t OpStop(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    f.result = ExecResult{Outcome::kSuccess, {}, f.call->gas - f.raw.gas};
    return kCtlDone;
  }

  static uint32_t OpArith(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word x = PopW(f);
    Word y = PopW(f);
    U256 r;
    bool overflow = false;
    switch (static_cast<Op>(ins->opcode)) {
      case Op::kAdd:
        r = x.value + y.value;
        overflow = U256::AddOverflows(x.value, y.value);
        break;
      case Op::kMul:
        r = x.value * y.value;
        overflow = U256::MulOverflows(x.value, y.value);
        break;
      case Op::kSub:
        r = x.value - y.value;
        overflow = U256::SubUnderflows(x.value, y.value);
        break;
      case Op::kDiv:
        r = x.value / y.value;
        break;
      case Op::kSdiv:
        r = x.value.Sdiv(y.value);
        break;
      case Op::kMod:
        r = x.value % y.value;
        break;
      case Op::kSmod:
        r = x.value.Smod(y.value);
        break;
      case Op::kExp:
        r = x.value.Exp(y.value);
        break;
      case Op::kSignextend:
        r = y.value.SignExtend(x.value);
        break;
      default:
        break;
    }
    if (overflow && f.it->observer_ != nullptr) {
      f.it->observer_->OnOverflow({ins->pc, static_cast<Op>(ins->opcode),
                                   x.taint | y.taint, false,
                                   f.call->depth});
    }
    if (!PushW(f, Word(r, x.taint | y.taint))) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpAddmodMulmod(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word x = PopW(f);
    Word y = PopW(f);
    Word m = PopW(f);
    U256 r = (static_cast<Op>(ins->opcode) == Op::kAddmod)
                 ? U256::AddMod(x.value, y.value, m.value)
                 : U256::MulMod(x.value, y.value, m.value);
    if (!PushW(f, Word(r, x.taint | y.taint | m.taint))) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpCmp(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word x = PopW(f);
    Word y = PopW(f);
    bool truth = false;
    CmpOp cmp_op = CmpOp::kEq;
    switch (static_cast<Op>(ins->opcode)) {
      case Op::kLt:
        truth = x.value < y.value;
        cmp_op = CmpOp::kLt;
        break;
      case Op::kGt:
        truth = x.value > y.value;
        cmp_op = CmpOp::kGt;
        break;
      case Op::kSlt:
        truth = x.value.Slt(y.value);
        cmp_op = CmpOp::kSlt;
        break;
      case Op::kSgt:
        truth = x.value.Sgt(y.value);
        cmp_op = CmpOp::kSgt;
        break;
      case Op::kEq:
        truth = x.value == y.value;
        cmp_op = CmpOp::kEq;
        break;
      default:
        break;
    }
    Word result(truth ? U256::One() : U256::Zero(), x.taint | y.taint);
    result.cmp_id = static_cast<int32_t>(f.it->cmp_records_.size());
    f.it->cmp_records_.push_back(
        {cmp_op, x.value, y.value, false, x.taint | y.taint});
    result.call_id = (x.call_id >= 0) ? x.call_id : y.call_id;
    if (!PushW(f, result)) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpIszero(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word x = PopW(f);
    Word result(x.value.IsZero() ? U256::One() : U256::Zero(), x.taint);
    if (x.cmp_id >= 0) {
      CmpRecord rec = f.it->cmp_records_[x.cmp_id];
      rec.negated = !rec.negated;
      result.cmp_id = static_cast<int32_t>(f.it->cmp_records_.size());
      f.it->cmp_records_.push_back(rec);
    } else {
      result.cmp_id = static_cast<int32_t>(f.it->cmp_records_.size());
      f.it->cmp_records_.push_back(
          {CmpOp::kIsZero, x.value, U256::Zero(), false, x.taint});
    }
    result.call_id = x.call_id;
    if (!PushW(f, result)) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpBitwise(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word x = PopW(f);
    Word y = PopW(f);
    U256 r;
    const Op op = static_cast<Op>(ins->opcode);
    if (op == Op::kAnd) r = x.value & y.value;
    if (op == Op::kOr) r = x.value | y.value;
    if (op == Op::kXor) r = x.value ^ y.value;
    Word result(r, x.taint | y.taint);
    result.call_id = (x.call_id >= 0) ? x.call_id : y.call_id;
    if (!PushW(f, result)) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpNot(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word x = PopW(f);
    if (!PushW(f, Word(~x.value, x.taint))) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpByte(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word i = PopW(f);
    Word x = PopW(f);
    if (!PushW(f, Word(x.value.Byte(i.value), x.taint | i.taint))) {
      return kCtlDone;
    }
    return kCtlNext;
  }

  static uint32_t OpShift(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word shift = PopW(f);
    Word x = PopW(f);
    unsigned n = shift.value.FitsU64() && shift.value.low64() < 256
                     ? static_cast<unsigned>(shift.value.low64())
                     : 256;
    U256 r;
    const Op op = static_cast<Op>(ins->opcode);
    if (op == Op::kShl) r = x.value << n;
    if (op == Op::kShr) r = x.value >> n;
    if (op == Op::kSar) r = x.value.Sar(n);
    if (!PushW(f, Word(r, x.taint | shift.taint))) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpKeccak(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word off = PopW(f);
    Word len = PopW(f);
    if (!off.value.FitsU64() || !len.value.FitsU64()) return FailMem(f);
    uint64_t offset = off.value.low64();
    uint64_t length = len.value.low64();
    if (!Charge(f, 6 * ((length + 31) / 32))) return FailOutOfGas(f);
    BytesView input;
    if (!f.memory().ViewOut(offset, length, &input)) return FailMem(f);
    auto digest = Keccak256(input);
    U256 r = U256::FromBytesBE(BytesView(digest.data(), 32)).value();
    if (!PushW(f, Word(r, MemTaintRange(f, offset, length)))) {
      return kCtlDone;
    }
    return kCtlNext;
  }

  static uint32_t OpAddress(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    if (!PushW(f, Word(f.call->to.ToWord()))) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpBalance(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word a = PopW(f);
    Address addr = Address::FromWord(a.value);
    if (f.it->observer_ != nullptr) {
      f.it->observer_->OnBalanceRead({ins->pc, f.call->depth});
    }
    if (!PushW(f, Word(f.it->state_->GetBalance(addr),
                       a.taint | kTaintBalance))) {
      return kCtlDone;
    }
    return kCtlNext;
  }

  static uint32_t OpSelfbalance(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    if (f.it->observer_ != nullptr) {
      f.it->observer_->OnBalanceRead({ins->pc, f.call->depth});
    }
    if (!PushW(f, Word(f.it->state_->GetBalance(f.call->to),
                       kTaintBalance))) {
      return kCtlDone;
    }
    return kCtlNext;
  }

  static uint32_t OpOrigin(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    if (!PushW(f, Word(f.call->origin.ToWord(), kTaintOrigin))) {
      return kCtlDone;
    }
    return kCtlNext;
  }

  static uint32_t OpCaller(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    if (!PushW(f, Word(f.call->caller.ToWord(), kTaintCaller))) {
      return kCtlDone;
    }
    return kCtlNext;
  }

  static uint32_t OpCallvalue(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    if (!PushW(f, Word(f.call->value, kTaintCallValue))) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpCalldataload(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word off = PopW(f);
    U256 v;
    if (off.value.FitsU64()) {
      uint64_t o = off.value.low64();
      uint8_t buf[32];
      for (int i = 0; i < 32; ++i) {
        buf[i] = (o + i < f.call->data.size()) ? f.call->data[o + i] : 0;
      }
      v = U256::FromBytesBE(BytesView(buf, 32)).value();
    }
    if (!PushW(f, Word(v, kTaintCalldata | off.taint))) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpCalldatasize(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    if (!PushW(f, Word(U256(f.call->data.size())))) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpCalldatacopy(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word dst = PopW(f);
    Word src = PopW(f);
    Word len = PopW(f);
    if (!dst.value.FitsU64() || !len.value.FitsU64()) return FailMem(f);
    uint64_t src_off = src.value.FitsU64() ? src.value.low64() : UINT64_MAX;
    if (!f.memory().CopyIn(dst.value.low64(), f.call->data, src_off,
                         len.value.low64())) {
      return FailMem(f);
    }
    MemTaintStore(f, dst.value.low64(), len.value.low64(), kTaintCalldata);
    return kCtlNext;
  }

  static uint32_t OpCodesize(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    if (!PushW(f, Word(U256(f.decoded->code.size())))) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpCodecopy(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word dst = PopW(f);
    Word src = PopW(f);
    Word len = PopW(f);
    if (!dst.value.FitsU64() || !len.value.FitsU64()) return FailMem(f);
    uint64_t src_off = src.value.FitsU64() ? src.value.low64() : UINT64_MAX;
    if (!f.memory().CopyIn(dst.value.low64(), f.decoded->code, src_off,
                         len.value.low64())) {
      return FailMem(f);
    }
    return kCtlNext;
  }

  static uint32_t OpGasprice(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    if (!PushW(f, Word(U256(1)))) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpReturndatasize(JitFrameRaw* raw,
                                   const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    if (!PushW(f, Word(U256(f.return_data().size())))) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpReturndatacopy(JitFrameRaw* raw,
                                   const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word dst = PopW(f);
    Word src = PopW(f);
    Word len = PopW(f);
    if (!dst.value.FitsU64() || !len.value.FitsU64()) return FailMem(f);
    uint64_t src_off = src.value.FitsU64() ? src.value.low64() : UINT64_MAX;
    if (!f.memory().CopyIn(dst.value.low64(), f.return_data(), src_off,
                         len.value.low64())) {
      return FailMem(f);
    }
    return kCtlNext;
  }

  static uint32_t OpBlockhash(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word n = PopW(f);
    Bytes seed;
    AppendU64BE(&seed, n.value.low64());
    auto digest = Keccak256(seed);
    if (f.it->observer_ != nullptr) {
      f.it->observer_->OnBlockRead(
          {ins->pc, static_cast<Op>(ins->opcode), f.call->depth});
    }
    if (!PushW(f,
               Word(U256::FromBytesBE(BytesView(digest.data(), 32)).value(),
                    kTaintBlock))) {
      return kCtlDone;
    }
    return kCtlNext;
  }

  static uint32_t OpBlockRead(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    const BlockContext& block = f.it->block_;
    U256 v;
    switch (static_cast<Op>(ins->opcode)) {
      case Op::kCoinbase:
        v = block.coinbase.ToWord();
        break;
      case Op::kTimestamp:
        v = U256(block.timestamp);
        break;
      case Op::kNumber:
        v = U256(block.number);
        break;
      case Op::kDifficulty:
        v = block.difficulty;
        break;
      case Op::kGaslimit:
        v = U256(block.gas_limit);
        break;
      default:
        break;
    }
    if (f.it->observer_ != nullptr) {
      f.it->observer_->OnBlockRead(
          {ins->pc, static_cast<Op>(ins->opcode), f.call->depth});
    }
    if (!PushW(f, Word(v, kTaintBlock))) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpPop(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    (void)PopW(f);
    return kCtlNext;
  }

  static uint32_t OpMload(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word off = PopW(f);
    if (!off.value.FitsU64()) return FailMem(f);
    U256 v;
    if (!f.memory().Load32(off.value.low64(), &v)) return FailMem(f);
    MemTag tag = MemTagLoad(f, off.value.low64());
    Word loaded(v, tag.taint);
    loaded.call_id = tag.call_id;
    if (!PushW(f, loaded)) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpMstore(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word off = PopW(f);
    Word val = PopW(f);
    if (!off.value.FitsU64() ||
        !f.memory().Store32(off.value.low64(), val.value)) {
      return FailMem(f);
    }
    MemTaintStore(f, off.value.low64(), 32, val.taint, val.call_id);
    return kCtlNext;
  }

  static uint32_t OpMstore8(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word off = PopW(f);
    Word val = PopW(f);
    if (!off.value.FitsU64() ||
        !f.memory().Store8(off.value.low64(),
                         static_cast<uint8_t>(val.value.low64() & 0xff))) {
      return FailMem(f);
    }
    MemTaintStore(f, off.value.low64(), 1, val.taint);
    return kCtlNext;
  }

  static uint32_t OpSload(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word key = PopW(f);
    const Account* acct = f.it->state_->Find(f.call->to);
    U256 v = acct ? acct->storage.Load(key.value) : U256::Zero();
    uint32_t t =
        kTaintStorage | (acct ? acct->storage.LoadTaint(key.value) : 0);
    if (!PushW(f, Word(v, t))) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpSstore(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    if (f.call->is_static) {
      f.result = ExecResult{Outcome::kStaticViolation, {},
                            f.call->gas - f.raw.gas};
      return kCtlDone;
    }
    Word key = PopW(f);
    Word val = PopW(f);
    f.it->state_->SetStorage(f.call->to, key.value, val.value, val.taint);
    if (f.it->observer_ != nullptr) {
      f.it->observer_->OnStore(
          {ins->pc, key.value, val.value, val.taint, f.call->depth});
    }
    return kCtlNext;
  }

  static uint32_t OpJump(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word dest = PopW(f);
    // Same truncation quirk as the byte path: FitsU64, then the low 64 bits
    // truncated to uint32 before validation.
    uint32_t d32 = static_cast<uint32_t>(dest.value.low64());
    if (!dest.value.FitsU64() || d32 >= f.decoded->code.size() ||
        f.decoded->pc_to_insn[d32] < 0) {
      return FailBadJump(f);
    }
    if (f.it->observer_ != nullptr) {
      f.it->observer_->OnJump(ins->pc, d32, f.call->depth);
    }
    f.raw.jump_ip = static_cast<uint64_t>(f.decoded->pc_to_insn[d32]);
    return kCtlDynamic;
  }

  static uint32_t OpJumpi(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word dest = PopW(f);
    Word cond = PopW(f);
    bool taken = !cond.value.IsZero();
    if (f.it->observer_ != nullptr) {
      BranchEvent ev;
      ev.pc = ins->pc;
      ev.dest = dest.value.FitsU64()
                    ? static_cast<uint32_t>(dest.value.low64())
                    : 0;
      ev.taken = taken;
      ev.cmp_id = cond.cmp_id;
      ev.call_id = cond.call_id;
      ev.cond_taint = cond.taint;
      ev.depth = f.call->depth;
      f.it->observer_->OnBranch(ev);
      if (cond.call_id >= 0) {
        f.it->observer_->OnCallResultChecked(cond.call_id);
      }
    }
    if (cond.taint & kTaintCaller) f.raw.caller_guard = 1;
    if (taken) {
      uint32_t d32 = static_cast<uint32_t>(dest.value.low64());
      if (!dest.value.FitsU64() || d32 >= f.decoded->code.size() ||
          f.decoded->pc_to_insn[d32] < 0) {
        return FailBadJump(f);
      }
      f.raw.jump_ip = static_cast<uint64_t>(f.decoded->pc_to_insn[d32]);
      return kCtlDynamic;
    }
    return kCtlNext;
  }

  static uint32_t OpPc(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    if (!PushW(f, Word(U256(ins->pc)))) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpMsize(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    if (!PushW(f, Word(U256(f.memory().SizeWords() * 32)))) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpGas(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    if (!PushW(f, Word(U256(f.raw.gas)))) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpJumpdest(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpReturnRevert(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    Word off = PopW(f);
    Word len = PopW(f);
    Bytes out;
    if (off.value.FitsU64() && len.value.FitsU64()) {
      if (!f.memory().CopyOut(off.value.low64(), len.value.low64(), &out)) {
        return FailMem(f);
      }
    }
    f.result = ExecResult{static_cast<Op>(ins->opcode) == Op::kReturn
                              ? Outcome::kSuccess
                              : Outcome::kRevert,
                          std::move(out), f.call->gas - f.raw.gas};
    return kCtlDone;
  }

  static uint32_t OpInvalid(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    f.result = ExecResult{Outcome::kInvalidOp, {}, f.call->gas};
    return kCtlDone;
  }

  static uint32_t OpSelfdestruct(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    if (f.call->is_static) {
      f.result = ExecResult{Outcome::kStaticViolation, {},
                            f.call->gas - f.raw.gas};
      return kCtlDone;
    }
    Word beneficiary = PopW(f);
    Address to = Address::FromWord(beneficiary.value);
    WorldState* state = f.it->state_;
    U256 balance = state->GetBalance(f.call->to);
    state->SetBalance(f.call->to, U256::Zero());
    state->MarkSelfDestructed(f.call->to);
    // Read `to` after zeroing the self balance so to == self nets right.
    state->SetBalance(to, state->GetBalance(to) + balance);
    if (f.it->observer_ != nullptr) {
      f.it->observer_->OnSelfdestruct(
          {ins->pc, to, f.raw.caller_guard != 0, f.call->depth});
    }
    f.result = ExecResult{Outcome::kSuccess, {}, f.call->gas - f.raw.gas};
    return kCtlDone;
  }

  static uint32_t OpCreate(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    // Contract creation from within contracts is out of scope for the
    // MiniSol corpus; treat as an invalid operation.
    f.result = ExecResult{Outcome::kInvalidOp, {}, f.call->gas};
    return kCtlDone;
  }

  static uint32_t OpCallFamily(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    const MessageCall& call = *f.call;
    Interpreter* it = f.it;
    const Op op = static_cast<Op>(ins->opcode);
    bool has_value = (op == Op::kCall || op == Op::kCallcode);
    Word gas_w = PopW(f);
    Word to_w = PopW(f);
    Word value_w;
    if (has_value) value_w = PopW(f);
    Word in_off = PopW(f);
    Word in_len = PopW(f);
    Word out_off = PopW(f);
    Word out_len = PopW(f);

    if (!in_off.value.FitsU64() || !in_len.value.FitsU64() ||
        !out_off.value.FitsU64() || !out_len.value.FitsU64()) {
      return FailMem(f);
    }
    Bytes input;
    if (!f.memory().CopyOut(in_off.value.low64(), in_len.value.low64(),
                          &input)) {
      return FailMem(f);
    }

    Address target = Address::FromWord(to_w.value);
    U256 value = has_value ? value_w.value : U256::Zero();
    if (!value.IsZero()) {
      if (!Charge(f, 9000)) return FailOutOfGas(f);
    }
    uint64_t gas_requested =
        gas_w.value.FitsU64() ? gas_w.value.low64() : f.raw.gas;
    uint64_t gas_forwarded = std::min(gas_requested, f.raw.gas);
    if (!value.IsZero()) gas_forwarded += 2300;  // call stipend

    int32_t call_id = it->next_call_id_++;
    CallEvent ev;
    ev.pc = ins->pc;
    ev.kind = op;
    ev.target = target;
    ev.value = value;
    ev.gas = gas_forwarded;
    ev.target_taint = to_w.taint;
    ev.value_taint = has_value ? value_w.taint : kTaintNone;
    ev.depth = call.depth;
    ev.call_id = call_id;
    ev.caller_guard_seen = f.raw.caller_guard != 0;

    bool success = false;
    Bytes child_output;
    WorldState* state = it->state_;
    const Account* target_acct = state->Find(target);
    bool target_has_code = target_acct != nullptr &&
                           target_acct->HasCode() && op != Op::kCallcode;
    ev.to_external = !target_has_code;

    if (call.is_static && !value.IsZero()) {
      success = false;
    } else if (target_has_code) {
      // Nested message call into another in-state contract.
      MessageCall child;
      if (op == Op::kDelegatecall) {
        child.to = call.to;           // keep storage context
        child.code_address = target;  // borrow code
        child.caller = call.caller;
        child.value = call.value;
      } else {
        child.to = target;
        child.code_address = target;
        child.caller = call.to;
        child.value = value;
      }
      child.origin = call.origin;
      child.data = input;
      child.gas = gas_forwarded;
      child.is_static = call.is_static || op == Op::kStaticcall;
      child.depth = call.depth + 1;

      size_t snapshot = state->Snapshot();
      bool transfer_ok = true;
      if (!value.IsZero() && op == Op::kCall) {
        transfer_ok = state->Transfer(call.to, target, value);
      }
      if (transfer_ok) {
        ExecResult child_result = it->RunFrame(child);
        uint64_t used = std::min(child_result.gas_used, f.raw.gas);
        f.raw.gas -= used;
        success = child_result.Success();
        child_output = std::move(child_result.output);
        if (success) {
          state->Commit(snapshot);
        } else {
          state->RevertTo(snapshot);
        }
      } else {
        state->RevertTo(snapshot);
        success = false;
      }
    } else {
      // External (code-less) target: host decides; value moves first.
      bool transfer_ok = true;
      if (!value.IsZero()) {
        transfer_ok = state->Transfer(call.to, target, value);
      }
      if (transfer_ok) {
        ExternalCallRequest req;
        req.caller = call.to;
        req.target = target;
        req.value = value;
        req.data = input;
        req.gas = gas_forwarded;
        req.kind = op;
        req.depth = call.depth;
        ExternalCallOutcome outcome = it->host_->OnExternalCall(req, it);
        success = outcome.success;
        child_output = std::move(outcome.return_data);
        if (!success && !value.IsZero()) {
          // Failed call returns the value.
          state->Transfer(target, call.to, value);
        }
      } else {
        success = false;
      }
    }

    ev.success = success;
    if (it->observer_ != nullptr) it->observer_->OnCall(ev);

    f.return_data() = child_output;
    uint64_t copy_len =
        std::min<uint64_t>(out_len.value.low64(), child_output.size());
    if (copy_len > 0) {
      if (!f.memory().CopyIn(out_off.value.low64(), child_output, 0,
                           copy_len)) {
        return FailMem(f);
      }
    }
    Word status(success ? U256::One() : U256::Zero(), kTaintCallResult);
    status.call_id = call_id;
    if (!PushW(f, status)) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpPush(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    if (!PushW(f, Word(ins->immediate))) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpDup(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    int n = DupDepth(ins->opcode);
    if (f.raw.checked) {
      if (f.raw.sp < static_cast<uint64_t>(n) ||
          f.raw.sp >= Stack::kMaxDepth) {
        return FailStack(f);
      }
    }
    Word copy = TopW(f, n - 1);
    Stk(f)[f.raw.sp++] = copy;
    return kCtlNext;
  }

  static uint32_t OpSwap(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    int n = SwapDepth(ins->opcode);
    if (f.raw.checked &&
        f.raw.sp < static_cast<uint64_t>(n) + 1) {
      return FailStack(f);
    }
    std::swap(Stk(f)[f.raw.sp - 1], Stk(f)[f.raw.sp - 1 - n]);
    return kCtlNext;
  }

  static uint32_t OpLog(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    if (!Prelude(f, ins)) return kCtlDone;
    (void)PopW(f);
    (void)PopW(f);
    for (int i = 0; i < LogTopics(ins->opcode); ++i) {
      (void)PopW(f);
    }
    return kCtlNext;
  }

  static uint32_t OpUndefined(JitFrameRaw* raw, const DecodedInsn* ins) {
    (void)ins;
    Frame& f = F(raw);
    // The byte path bails before OnStep and the gas charge — but after the
    // step-limit bump.
    if (++f.it->steps_ > f.it->config_.max_steps) {
      return FailStepLimit(f);
    }
    f.result = ExecResult{Outcome::kInvalidOp, {}, f.call->gas};
    return kCtlDone;
  }

  static uint32_t OpPushJump(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    // PUSH component: the pushed word is consumed by the JUMP immediately,
    // but the overflow the byte path would hit must still be reported.
    if (!Bookkeep(f, ins->pc, ins->opcode, ins->gas)) return kCtlDone;
    if (f.raw.checked && f.raw.sp >= Stack::kMaxDepth) return FailStack(f);
    // JUMP component (its arity is satisfied by the virtual push).
    if (!Bookkeep(f, ins->pc2, ins->opcode2, ins->gas2)) return kCtlDone;
    if (ins->jump_target < 0) return FailBadJump(f);
    if (f.it->observer_ != nullptr) {
      f.it->observer_->OnJump(ins->pc2,
                              static_cast<uint32_t>(ins->immediate.low64()),
                              f.call->depth);
    }
    return kCtlStatic;
  }

  static uint32_t OpPushJumpi(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    // PUSH dest component.
    if (!Bookkeep(f, ins->pc, ins->opcode, ins->gas)) return kCtlDone;
    if (f.raw.checked && f.raw.sp >= Stack::kMaxDepth) return FailStack(f);
    // JUMPI component: needs the condition under the virtual dest.
    if (!Bookkeep(f, ins->pc2, ins->opcode2, ins->gas2)) return kCtlDone;
    if (f.raw.checked && f.raw.sp < 1) return FailStack(f);
    Word cond = PopW(f);
    bool taken = !cond.value.IsZero();
    if (f.it->observer_ != nullptr) {
      BranchEvent ev;
      ev.pc = ins->pc2;
      ev.dest = ins->immediate.FitsU64()
                    ? static_cast<uint32_t>(ins->immediate.low64())
                    : 0;
      ev.taken = taken;
      ev.cmp_id = cond.cmp_id;
      ev.call_id = cond.call_id;
      ev.cond_taint = cond.taint;
      ev.depth = f.call->depth;
      f.it->observer_->OnBranch(ev);
      if (cond.call_id >= 0) {
        f.it->observer_->OnCallResultChecked(cond.call_id);
      }
    }
    if (cond.taint & kTaintCaller) f.raw.caller_guard = 1;
    if (taken) {
      if (ins->jump_target < 0) return FailBadJump(f);
      return kCtlStatic;
    }
    return kCtlNext;
  }

  /// Observer tail of the inlined kPushJumpi: the emitted fast path has
  /// already run both bookkeeps and both checked stack tests and proven the
  /// observer non-null, so this only pops the condition, reports the branch,
  /// and returns the control code for the native kCtlStatic dispatch.
  static uint32_t PushJumpiTail(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    Word cond = PopW(f);
    bool taken = !cond.value.IsZero();
    BranchEvent ev;
    ev.pc = ins->pc2;
    ev.dest = ins->immediate.FitsU64()
                  ? static_cast<uint32_t>(ins->immediate.low64())
                  : 0;
    ev.taken = taken;
    ev.cmp_id = cond.cmp_id;
    ev.call_id = cond.call_id;
    ev.cond_taint = cond.taint;
    ev.depth = f.call->depth;
    f.it->observer_->OnBranch(ev);
    if (cond.call_id >= 0) {
      f.it->observer_->OnCallResultChecked(cond.call_id);
    }
    if (cond.taint & kTaintCaller) f.raw.caller_guard = 1;
    if (taken) {
      if (ins->jump_target < 0) return FailBadJump(f);
      return kCtlStatic;
    }
    return kCtlNext;
  }

  /// Overflow-event tail of the inlined kArith ADD/SUB: bookkeeping and the
  /// arity check already ran natively and the carry chain proved an
  /// overflow with a live observer, so this redoes the op in full Word form
  /// (pops, event, push — the push cannot fail: two pops preceded it).
  static void ArithTail(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    Word x = PopW(f);
    Word y = PopW(f);
    const Op op = static_cast<Op>(ins->opcode);
    U256 r = op == Op::kAdd ? x.value + y.value : x.value - y.value;
    f.it->observer_->OnOverflow(
        {ins->pc, op, x.taint | y.taint, false, f.call->depth});
    Stk(f)[f.raw.sp++] = Word(r, x.taint | y.taint);
  }

  static uint32_t OpDupSload(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    // DUPn component: the duplicated key never round-trips through the
    // stack; it is read in place below.
    if (!Bookkeep(f, ins->pc, ins->opcode, ins->gas)) return kCtlDone;
    int n = DupDepth(ins->opcode);
    if (f.raw.checked) {
      if (f.raw.sp < static_cast<uint64_t>(n)) return FailStack(f);
      if (f.raw.sp >= Stack::kMaxDepth) return FailStack(f);
    }
    // SLOAD component (arity satisfied by the virtual dup).
    if (!Bookkeep(f, ins->pc2, ins->opcode2, ins->gas2)) return kCtlDone;
    U256 key = TopW(f, n - 1).value;  // SLOAD discards the key taint
    const Account* acct = f.it->state_->Find(f.call->to);
    U256 v = acct ? acct->storage.Load(key) : U256::Zero();
    uint32_t t = kTaintStorage | (acct ? acct->storage.LoadTaint(key) : 0);
    // Net effect of DUP + SLOAD is one push; it can never overflow after
    // the dup check passed (see the decoded handler).
    Stk(f)[f.raw.sp++] = Word(v, t);
    return kCtlNext;
  }

  static uint32_t OpPushPushArith(JitFrameRaw* raw, const DecodedInsn* ins) {
    Frame& f = F(raw);
    // PUSH a component.
    if (!Bookkeep(f, ins->pc, ins->opcode, ins->gas)) return kCtlDone;
    if (f.raw.checked && f.raw.sp >= Stack::kMaxDepth) return FailStack(f);
    // PUSH b component: the byte path pushes a first, so its overflow
    // threshold is one lower.
    if (!Bookkeep(f, ins->pc2, ins->opcode2, ins->gas2)) return kCtlDone;
    if (f.raw.checked && f.raw.sp + 1 >= Stack::kMaxDepth) {
      return FailStack(f);
    }
    // Folded arithmetic component (arity satisfied by the virtual pushes).
    if (!Bookkeep(f, ins->pc3, ins->opcode3, ins->gas3)) return kCtlDone;
    if (ins->folded_overflow && f.it->observer_ != nullptr) {
      f.it->observer_->OnOverflow({ins->pc3, static_cast<Op>(ins->opcode3),
                                   kTaintNone, false, f.call->depth});
    }
    if (!PushW(f, Word(ins->immediate))) return kCtlDone;
    return kCtlNext;
  }

  static uint32_t OpEnd(JitFrameRaw* raw, const DecodedInsn* ins) {
    (void)ins;
    Frame& f = F(raw);
    // Fell off the end of the code: implicit STOP (no step, no charge).
    f.result = ExecResult{Outcome::kSuccess, {}, f.call->gas - f.raw.gas};
    return kCtlDone;
  }

  static ExecResult Run(Interpreter* it, const MessageCall& call,
                        const DecodedCode& decoded,
                        const CompiledCode& compiled);
};

ExecResult JitExec::Run(Interpreter* it, const MessageCall& call,
                        const DecodedCode& decoded,
                        const CompiledCode& compiled) {
  // Executing a frame brings the callee account into existence (journaled),
  // exactly as both interpreter loops do before dispatching.
  it->state_->Touch(call.to);

  // Memory / taint map / return data come from the pooled arena, like both
  // interpreter loops. The operand stack keeps its own uninitialized pool —
  // every slot is written before it is read, and constructing 1024 Words
  // per frame costs more than many whole transactions — indexed by the
  // lease slot (live-frame count), not call.depth: host reentry can put two
  // live frames at the same depth, and they must not share a buffer.
  Interpreter::ArenaLease lease(it);
  const size_t slot = it->arena_top_ - 1;
  if (it->jit_stacks_.size() <= slot) it->jit_stacks_.resize(slot + 1);
  if (it->jit_stacks_[slot] == nullptr) {
    it->jit_stacks_[slot].reset(
        new unsigned char[sizeof(Word) * Stack::kMaxDepth]);
  }
  Frame f;
  f.arena = &lease.arena;
  f.it = it;
  f.call = &call;
  f.decoded = &decoded;
  f.raw.stack = it->jit_stacks_[slot].get();
  f.raw.sp = 0;
  f.raw.gas = call.gas;
  f.raw.steps_ptr = &it->steps_;
  f.raw.max_steps = it->config_.max_steps;
  f.raw.observer = it->observer_;
  f.raw.jump_ip = 0;
  f.raw.checked = 1;
  f.raw.depth = call.depth;

  compiled.entry(&f.raw);
  return f.result;
}

ExecResult Interpreter::RunFrameJit(const MessageCall& call,
                                    const DecodedCode& decoded,
                                    const CompiledCode& compiled) {
  return JitExec::Run(this, call, decoded, compiled);
}

// ---------------------------------------------------------------------------
// The emitter (x86-64 SysV only).
// ---------------------------------------------------------------------------

#ifdef MUFUZZ_JIT_SUPPORTED

namespace {

using HelperFn = uint32_t (*)(JitFrameRaw*, const DecodedInsn*);

template <typename F>
uint64_t FnAddr(F* f) {
  return reinterpret_cast<uint64_t>(reinterpret_cast<void*>(f));
}

/// Itanium-ABI pointer-to-member-function: {ptr, adj}, where a virtual
/// member has ptr = 1 + the byte offset of its vtable slot. Extracting the
/// slot lets the emitted bookkeeping dispatch observer->OnStep with the
/// same load-vtable-and-call sequence the compiled decoded loop uses — no
/// C++ thunk hop on the per-step hot path. The emitter is x86-64 SysV only
/// and every such toolchain speaks this ABI; an unexpected representation
/// (non-virtual, this-adjustment, oversized offset) falls back to the thunk.
struct VtableSlot {
  bool valid = false;
  uint32_t off = 0;  ///< byte offset into the vtable
};

template <typename Pmf>
VtableSlot SlotOf(Pmf pmf) {
  struct Rep {
    uint64_t ptr;
    uint64_t adj;
  };
  static_assert(sizeof(Pmf) == sizeof(Rep));
  Rep rep;
  std::memcpy(&rep, &pmf, sizeof rep);
  VtableSlot slot;
  if ((rep.ptr & 1) != 0 && rep.adj == 0 && rep.ptr - 1 <= 0x7FFFFFFF) {
    slot.valid = true;
    slot.off = static_cast<uint32_t>(rep.ptr - 1);
  }
  return slot;
}

// Condition-code bytes for the 0F 8x jcc rel32 family.
constexpr uint8_t kJb = 0x82;
constexpr uint8_t kJae = 0x83;
constexpr uint8_t kJe = 0x84;
constexpr uint8_t kJne = 0x85;
constexpr uint8_t kJa = 0x87;
// Opcode bytes for the short 7x jcc rel8 family (Emitter::Jcc8Fwd).
constexpr uint8_t kJae8 = 0x73;  // also jnc
constexpr uint8_t kJe8 = 0x74;

class Emitter {
 public:
  enum Stub {
    kStubEpilogue = 0,
    kStubStepLimit,
    kStubOutOfGas,
    kStubStackErr,
    kStubBadJump,
    kStubDynJump,
    kStubCount,
  };

  explicit Emitter(size_t insn_count) : insn_off_(insn_count, 0) {}

  // -- Raw byte plumbing. ---------------------------------------------------
  void B(uint8_t b) { buf_.push_back(b); }
  void Seq(std::initializer_list<uint8_t> bs) {
    buf_.insert(buf_.end(), bs);
  }
  void W32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
  }
  void W64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
  }
  size_t Here() const { return buf_.size(); }

  // -- Branch plumbing. -----------------------------------------------------
  void MarkInsn(size_t index) { insn_off_[index] = Here(); }
  void JmpInsn(size_t index) {
    B(0xE9);
    insn_fixups_.push_back({Here(), index});
    W32(0);
  }
  void JccInsn(uint8_t cc, size_t index) {
    B(0x0F);
    B(cc);
    insn_fixups_.push_back({Here(), index});
    W32(0);
  }
  void JmpStub(Stub s) {
    B(0xE9);
    stub_fixups_.push_back({Here(), s});
    W32(0);
  }
  void JccStub(uint8_t cc, Stub s) {
    B(0x0F);
    B(cc);
    stub_fixups_.push_back({Here(), s});
    W32(0);
  }
  size_t JccFwd(uint8_t cc) {
    B(0x0F);
    B(cc);
    size_t pos = Here();
    W32(0);
    return pos;
  }
  void Bind(size_t pos) { Patch(pos, Here()); }
  /// Short unconditional forward jump; pair with Bind8.
  size_t JmpFwd8() {
    B(0xEB);
    size_t pos = Here();
    B(0);
    return pos;
  }
  void Bind8(size_t pos) {
    buf_[pos] = static_cast<uint8_t>(Here() - (pos + 1));
  }
  void MarkStub(Stub s) { stub_off_[s] = Here(); }

  void Finish() {
    for (const auto& [pos, index] : insn_fixups_) {
      Patch(pos, insn_off_[index]);
    }
    for (const auto& [pos, stub] : stub_fixups_) {
      Patch(pos, stub_off_[stub]);
    }
  }

  // -- Instruction helpers (rbx = JitFrameRaw*). ----------------------------
  void MovRaxFrame(uint8_t off) { Seq({0x48, 0x8B, 0x43, off}); }
  void MovFrameRax(uint8_t off) { Seq({0x48, 0x89, 0x43, off}); }
  void MovRdxFrame(uint8_t off) { Seq({0x48, 0x8B, 0x53, off}); }
  void CmpRaxImm(uint32_t imm) {
    Seq({0x48, 0x3D});
    W32(imm);
  }
  void AddRaxImm(uint32_t imm) {
    Seq({0x48, 0x05});
    W32(imm);
  }
  void SubRaxImm(uint32_t imm) {
    Seq({0x48, 0x2D});
    W32(imm);
  }
  void MovAbsRax(uint64_t v) {
    Seq({0x48, 0xB8});
    W64(v);
  }
  void MovAbsRsi(uint64_t v) {
    Seq({0x48, 0xBE});
    W64(v);
  }
  void MovAbsRcx(uint64_t v) {
    Seq({0x48, 0xB9});
    W64(v);
  }
  void MovAbsR8(uint64_t v) {
    Seq({0x49, 0xB8});
    W64(v);
  }
  void CallRax() { Seq({0xFF, 0xD0}); }
  /// call qword [rax + disp32] (virtual dispatch through a vtable in rax).
  void CallRaxDisp(uint32_t disp) {
    Seq({0xFF, 0x90});
    W32(disp);
  }
  void MovRdiRbx() { Seq({0x48, 0x89, 0xDF}); }
  void MovRdiFrame(uint8_t off) { Seq({0x48, 0x8B, 0x7B, off}); }
  void TestRdiRdi() { Seq({0x48, 0x85, 0xFF}); }
  /// mov ecx, dword [rbx + off].
  void MovEcxFrame(uint8_t off) { Seq({0x8B, 0x4B, off}); }
  /// mov rax, qword [rdi] (load a vtable pointer).
  void MovRaxMemRdi() { Seq({0x48, 0x8B, 0x07}); }
  void MovEsiImm(uint32_t v) {
    B(0xBE);
    W32(v);
  }
  void MovEdxImm(uint32_t v) {
    B(0xBA);
    W32(v);
  }
  void TestRaxRax() { Seq({0x48, 0x85, 0xC0}); }
  void TestEaxEax() { Seq({0x85, 0xC0}); }
  void CmpEaxImm8(uint8_t v) { Seq({0x83, 0xF8, v}); }
  void CmpCheckedZero() { Seq({0x80, 0x7B, kOffChecked, 0x00}); }
  void SetChecked(uint8_t v) { Seq({0xC6, 0x43, kOffChecked, v}); }
  void CmpSpImm32(uint32_t v) {
    Seq({0x48, 0x81, 0x7B, kOffSp});
    W32(v);
  }
  /// sub qword [rbx + off], imm32 (sign-extended; callers pass <= 16 bits).
  void SubFrameImm32(uint8_t off, uint32_t v) {
    Seq({0x48, 0x81, 0x6B, off});
    W32(v);
  }
  void IncSp() { Seq({0x48, 0xFF, 0x43, kOffSp}); }
  void DecSp() { Seq({0x48, 0xFF, 0x4B, kOffSp}); }
  /// rdx = &stack[sp] (rax, rcx clobbered).
  void LoadStackTopRdx() {
    MovRaxFrame(kOffSp);
    MovRdxFrame(kOffStack);
    Seq({0x48, 0x8D, 0x0C, 0x40});  // lea rcx, [rax + rax*2]
    Seq({0x48, 0xC1, 0xE1, 0x04});  // shl rcx, 4
    Seq({0x48, 0x01, 0xCA});        // add rdx, rcx
  }
  /// movups xmmN, [rdx + disp] / movups [rdx + disp], xmmN.
  void MovupsLoad(uint8_t xmm, int32_t disp) {
    Seq({0x0F, 0x10, static_cast<uint8_t>(0x82 | (xmm << 3))});
    W32(static_cast<uint32_t>(disp));
  }
  void MovupsStore(uint8_t xmm, int32_t disp) {
    Seq({0x0F, 0x11, static_cast<uint8_t>(0x82 | (xmm << 3))});
    W32(static_cast<uint32_t>(disp));
  }
  /// mov qword [rdx + disp], r8.
  void MovRdxDispR8(int32_t disp) {
    Seq({0x4C, 0x89, 0x82});
    W32(static_cast<uint32_t>(disp));
  }
  /// mov dword [rdx + disp], imm32.
  void MovRdxDispImm32(int32_t disp, uint32_t imm) {
    Seq({0xC7, 0x82});
    W32(static_cast<uint32_t>(disp));
    W32(imm);
  }
  /// REX.W `op` r(8+n), [rdx + disp8] (n = 0..3 selects r8..r11). `op` is
  /// the two-operand opcode byte: 8B mov-load, 89 mov-store, 03 add,
  /// 13 adc, 2B sub, 1B sbb, 23 and, 0B or, 33 xor. The same ModRM byte
  /// serves both directions — 89 writes the register to memory.
  void RnRdxDisp8(uint8_t op, uint8_t n, int8_t disp) {
    Seq({0x4C, op, static_cast<uint8_t>(0x42 | (n << 3)),
         static_cast<uint8_t>(disp)});
  }
  /// REX.W `op` rax, [rdx + disp8] (same opcode table as RnRdxDisp8).
  void RaxRdxDisp8(uint8_t op, int8_t disp) {
    Seq({0x48, op, 0x42, static_cast<uint8_t>(disp)});
  }
  /// 32-bit `op` eax, [rdx + disp8] (no REX; same opcode table).
  void EaxRdxDisp8(uint8_t op, int8_t disp) {
    Seq({op, 0x42, static_cast<uint8_t>(disp)});
  }
  /// cmovs eax, [rdx + disp8].
  void CmovsEaxRdxDisp8(int8_t disp) {
    Seq({0x0F, 0x48, 0x42, static_cast<uint8_t>(disp)});
  }
  /// mov dword [rdx + disp8], imm32.
  void MovRdxDisp8Imm32(int8_t disp, uint32_t imm) {
    Seq({0xC7, 0x42, static_cast<uint8_t>(disp)});
    W32(imm);
  }
  /// test dword [rdx + disp8], imm32.
  void TestRdxDisp8Imm32(int8_t disp, uint32_t imm) {
    Seq({0xF7, 0x42, static_cast<uint8_t>(disp)});
    W32(imm);
  }
  /// mov qword [rbx + disp8], imm32 (sign-extended).
  void MovFrameImm32(uint8_t off, uint32_t imm) {
    Seq({0x48, 0xC7, 0x43, off});
    W32(imm);
  }
  /// Short forward jcc (rel8, 0x7x opcode byte); pair with Bind8.
  size_t Jcc8Fwd(uint8_t cc8) {
    B(cc8);
    size_t pos = Here();
    B(0);
    return pos;
  }

  const std::vector<uint8_t>& buf() const { return buf_; }
  const std::vector<size_t>& insn_off() const { return insn_off_; }

 private:
  void Patch(size_t pos, size_t target) {
    int64_t rel = static_cast<int64_t>(target) -
                  (static_cast<int64_t>(pos) + 4);
    uint32_t rel32 = static_cast<uint32_t>(static_cast<int32_t>(rel));
    for (int i = 0; i < 4; ++i) buf_[pos + i] = (rel32 >> (8 * i)) & 0xff;
  }

  std::vector<uint8_t> buf_;
  std::vector<size_t> insn_off_;
  std::vector<std::pair<size_t, size_t>> insn_fixups_;
  std::vector<std::pair<size_t, Stub>> stub_fixups_;
  size_t stub_off_[kStubCount] = {};
};

/// Fail-kind codes passed to JitExec::ThunkFail by the shared bail stubs.
constexpr uint32_t kFailStepLimit = 0;
constexpr uint32_t kFailOutOfGas = 1;
constexpr uint32_t kFailStackErr = 2;
constexpr uint32_t kFailBadJump = 3;

/// Emits the per-original-instruction bookkeeping inline: step-limit
/// bump/check, observer OnStep (guarded on a null test), gas charge.
void EmitBookkeep(Emitter& e, uint32_t pc, uint8_t opcode, uint16_t gas) {
  // steps: rax = steps_ptr; rcx = *rax + 1; *rax = rcx; rcx > max ? bail.
  e.MovRaxFrame(kOffStepsPtr);
  e.Seq({0x48, 0x8B, 0x08});        // mov rcx, [rax]
  e.Seq({0x48, 0x83, 0xC1, 0x01});  // add rcx, 1
  e.Seq({0x48, 0x89, 0x08});        // mov [rax], rcx
  e.Seq({0x48, 0x3B, 0x4B, kOffMaxSteps});  // cmp rcx, [rbx + max_steps]
  e.JccStub(kJa, Emitter::kStubStepLimit);
  // observer: null test, then OnStep — a native virtual dispatch when the
  // ABI representation could be decoded, the C++ thunk otherwise.
  static const VtableSlot kOnStepSlot = SlotOf(&ExecObserver::OnStep);
  if (kOnStepSlot.valid) {
    e.MovRdiFrame(kOffObserver);
    e.TestRdiRdi();
    size_t no_obs = e.JccFwd(kJe);
    e.MovEsiImm(pc);
    e.MovEdxImm(opcode);
    e.MovEcxFrame(kOffDepth);
    e.MovRaxMemRdi();
    e.CallRaxDisp(kOnStepSlot.off);
    e.Bind(no_obs);
  } else {
    e.MovRaxFrame(kOffObserver);
    e.TestRaxRax();
    size_t no_obs = e.JccFwd(kJe);
    e.MovRdiRbx();
    e.MovEsiImm(pc);
    e.MovEdxImm(opcode);
    e.MovAbsRax(FnAddr(&JitExec::ThunkOnStep));
    e.CallRax();
    e.Bind(no_obs);
  }
  // gas charge: a destructive sub whose borrow IS the gas < amount test.
  // Legal because the out-of-gas result reports f.call->gas (the frame's
  // whole budget), never the clobbered remaining-gas counter.
  if (gas != 0) {
    e.SubFrameImm32(kOffGas, gas);
    e.JccStub(kJb, Emitter::kStubOutOfGas);
  }
}

/// Emits the checked-mode arity test of PRELUDE (skipped for arity 0).
void EmitArityCheck(Emitter& e, uint8_t inputs) {
  if (inputs == 0) return;
  e.CmpCheckedZero();
  size_t skip = e.JccFwd(kJe);
  e.CmpSpImm32(inputs);
  e.JccStub(kJb, Emitter::kStubStackErr);
  e.Bind(skip);
}

/// Emits the checked-mode stack-overflow test: sp >= limit ? stack error.
void EmitOverflowCheck(Emitter& e, uint32_t limit) {
  e.CmpCheckedZero();
  size_t skip = e.JccFwd(kJe);
  e.CmpSpImm32(limit);
  e.JccStub(kJae, Emitter::kStubStackErr);
  e.Bind(skip);
}

/// Emits an unchecked push of a compile-time-constant Word: four immediate
/// limb stores plus the taint/cmp_id/call_id defaults.
void EmitPushImm(Emitter& e, const U256& value) {
  e.LoadStackTopRdx();
  for (int i = 0; i < 4; ++i) {
    e.MovAbsR8(value.limb(i));
    e.MovRdxDispR8(8 * i);
  }
  e.MovRdxDispImm32(32, 0);            // taint = kTaintNone
  e.MovRdxDispImm32(36, 0xFFFFFFFF);   // cmp_id = -1
  e.MovRdxDispImm32(40, 0xFFFFFFFF);   // call_id = -1
  e.IncSp();
}

/// Emits `call helper(frame, ins)`.
void EmitHelperCall(Emitter& e, HelperFn fn, const DecodedInsn* ins) {
  e.MovRdiRbx();
  e.MovAbsRsi(reinterpret_cast<uint64_t>(ins));
  e.MovAbsRax(FnAddr(fn));
  e.CallRax();
}

/// Emits the control-code dispatch after a helper that can only return
/// kCtlNext or kCtlDone.
void EmitCtlNextDone(Emitter& e) {
  e.TestEaxEax();
  e.JccStub(kJne, Emitter::kStubEpilogue);
}

/// Dispatch after a helper that can return kCtlNext/kCtlDynamic/kCtlDone.
void EmitCtlDynamic(Emitter& e) {
  e.TestEaxEax();
  size_t next = e.JccFwd(kJe);
  e.CmpEaxImm8(kCtlDynamic);
  e.JccStub(kJe, Emitter::kStubDynJump);
  e.JmpStub(Emitter::kStubEpilogue);
  e.Bind(next);
}

/// Dispatch after a helper that can return kCtlNext/kCtlStatic/kCtlDone.
/// `target` is the static branch target (insn index); kCtlStatic is
/// unreachable when the decode left jump_target invalid, so the epilogue
/// stands in.
void EmitCtlStatic(Emitter& e, int32_t target) {
  e.TestEaxEax();
  size_t next = e.JccFwd(kJe);
  if (target >= 0) {
    e.CmpEaxImm8(kCtlStatic);
    e.JccInsn(kJe, static_cast<size_t>(target));
  }
  e.JmpStub(Emitter::kStubEpilogue);
  e.Bind(next);
}

void EmitFailStub(Emitter& e, Emitter::Stub stub, uint32_t kind) {
  e.MarkStub(stub);
  e.MovRdiRbx();
  e.MovEsiImm(kind);
  e.MovAbsRax(FnAddr(&JitExec::ThunkFail));
  e.CallRax();
  e.JmpStub(Emitter::kStubEpilogue);
}

// With rdx = &stack[sp], the two operands of a binary op sit at fixed
// displacements: x (the top word OpArith/OpBitwise pop first) and y below
// it. Word is 48 bytes, so every field is in rel8 range of rdx.
constexpr int8_t kXValue = -48;   ///< stack[sp-1].value limb 0
constexpr int8_t kYValue = -96;   ///< stack[sp-2].value limb 0
constexpr int8_t kXTaint = -16;   ///< stack[sp-1].taint
constexpr int8_t kYTaint = -64;   ///< stack[sp-2].taint
constexpr int8_t kYCmpId = -60;   ///< stack[sp-2].cmp_id
constexpr int8_t kXCallId = -8;   ///< stack[sp-1].call_id
constexpr int8_t kYCallId = -56;  ///< stack[sp-2].call_id

/// Writes the merged taint (x|y), cmp_id = -1, and the result limbs held in
/// r8..r11 into y's slot, then drops sp — the net effect of pop/pop/push.
/// call_id is left to the caller (arith resets it, bitwise propagates it).
void EmitBinopStore(Emitter& e) {
  for (uint8_t i = 0; i < 4; ++i) {
    e.RnRdxDisp8(0x89, i, static_cast<int8_t>(kYValue + 8 * i));
  }
  e.EaxRdxDisp8(0x8B, kXTaint);
  e.EaxRdxDisp8(0x0B, kYTaint);
  e.EaxRdxDisp8(0x89, kYTaint);
  e.MovRdxDisp8Imm32(kYCmpId, 0xFFFFFFFF);
  e.DecSp();
}

/// Inlined kArith ADD/SUB. The carry chain computes the 256-bit result into
/// r8..r11 without touching the stack; the final CF is exactly
/// U256::AddOverflows / SubUnderflows. Overflow with a live observer defers
/// to JitExec::ArithTail (which replays the op in Word form and fires the
/// OnOverflow event); otherwise — including overflow with no observer,
/// where the decoded handler also skips the event — the result lands in
/// y's slot with taint = x|y and cmp_id/call_id reset, matching OpArith's
/// pop/pop/push net effect.
void EmitInlineAddSub(Emitter& e, const DecodedInsn* ins, bool is_add) {
  EmitBookkeep(e, ins->pc, ins->opcode, ins->gas);
  EmitArityCheck(e, ins->inputs);
  e.LoadStackTopRdx();
  const uint8_t first = is_add ? 0x03 : 0x2B;  // add / sub r, m
  const uint8_t rest = is_add ? 0x13 : 0x1B;   // adc / sbb r, m
  for (uint8_t i = 0; i < 4; ++i) {
    e.RnRdxDisp8(0x8B, i, static_cast<int8_t>(kXValue + 8 * i));
    e.RnRdxDisp8(i == 0 ? first : rest, i,
                 static_cast<int8_t>(kYValue + 8 * i));
  }
  size_t fast_nc = e.Jcc8Fwd(kJae8);  // jnc: no overflow
  e.MovRaxFrame(kOffObserver);
  e.TestRaxRax();
  size_t fast_noobs = e.Jcc8Fwd(kJe8);
  e.MovRdiRbx();
  e.MovAbsRsi(reinterpret_cast<uint64_t>(ins));
  e.MovAbsRax(FnAddr(&JitExec::ArithTail));
  e.CallRax();
  size_t done = e.JmpFwd8();
  e.Bind8(fast_nc);
  e.Bind8(fast_noobs);
  EmitBinopStore(e);
  e.MovRdxDisp8Imm32(kYCallId, 0xFFFFFFFF);
  e.Bind8(done);
}

/// Inlined kBitwise AND/OR/XOR: no overflow, no observer event — fully
/// native. call_id propagates as in OpBitwise: x's if >= 0, else y's.
void EmitInlineBitwise(Emitter& e, const DecodedInsn* ins) {
  EmitBookkeep(e, ins->pc, ins->opcode, ins->gas);
  EmitArityCheck(e, ins->inputs);
  e.LoadStackTopRdx();
  const Op op = static_cast<Op>(ins->opcode);
  const uint8_t opb = op == Op::kAnd ? 0x23 : op == Op::kOr ? 0x0B : 0x33;
  for (uint8_t i = 0; i < 4; ++i) {
    e.RnRdxDisp8(0x8B, i, static_cast<int8_t>(kXValue + 8 * i));
    e.RnRdxDisp8(opb, i, static_cast<int8_t>(kYValue + 8 * i));
  }
  // call_id into y BEFORE EmitBinopStore bumps sp down (rdx is stale-proof:
  // it never reloads), so order is free; keep it first for clarity.
  e.EaxRdxDisp8(0x8B, kXCallId);
  e.TestEaxEax();
  e.CmovsEaxRdxDisp8(kYCallId);  // x.call_id < 0 ? y.call_id : x.call_id
  e.EaxRdxDisp8(0x89, kYCallId);
  EmitBinopStore(e);
}

/// Inlined kPushJumpi fast path. Bookkeeping and both checked stack tests
/// run natively; with no observer attached the pop, the caller-guard taint
/// test, and the taken decision are all native — a fused conditional branch
/// with zero calls. With an observer the already-bookkept frame defers to
/// JitExec::PushJumpiTail for the branch event, dispatched exactly like the
/// old full-helper path.
void EmitInlinePushJumpi(Emitter& e, const DecodedInsn* ins) {
  // PUSH dest component.
  EmitBookkeep(e, ins->pc, ins->opcode, ins->gas);
  EmitOverflowCheck(e, static_cast<uint32_t>(Stack::kMaxDepth));
  // JUMPI component: needs the condition under the virtual dest.
  EmitBookkeep(e, ins->pc2, ins->opcode2, ins->gas2);
  EmitArityCheck(e, 1);
  e.MovRaxFrame(kOffObserver);
  e.TestRaxRax();
  size_t slow = e.JccFwd(kJne);
  // Fast path: pop cond (it stays readable at rdx-48 — DecSp only touches
  // the frame, not rdx), record a caller-tainted guard, branch on != 0.
  e.LoadStackTopRdx();
  e.DecSp();
  e.TestRdxDisp8Imm32(kXTaint, kTaintCaller);
  size_t no_guard = e.Jcc8Fwd(kJe8);
  e.MovFrameImm32(kOffCallerGuard, 1);
  e.Bind8(no_guard);
  e.RaxRdxDisp8(0x8B, kXValue);
  e.RaxRdxDisp8(0x0B, static_cast<int8_t>(kXValue + 8));
  e.RaxRdxDisp8(0x0B, static_cast<int8_t>(kXValue + 16));
  e.RaxRdxDisp8(0x0B, static_cast<int8_t>(kXValue + 24));
  size_t not_taken = e.JccFwd(kJe);
  if (ins->jump_target < 0) {
    e.JmpStub(Emitter::kStubBadJump);
  } else {
    e.JmpInsn(static_cast<size_t>(ins->jump_target));
  }
  e.Bind(not_taken);
  size_t done = e.JmpFwd8();
  e.Bind(slow);
  EmitHelperCall(e, &JitExec::PushJumpiTail, ins);
  EmitCtlStatic(e, ins->jump_target);
  e.Bind8(done);
}

/// Helper table, indexed by IrOp, for the subroutine-threaded default path.
HelperFn HelperFor(IrOp ir) {
  switch (ir) {
    case IrOp::kStop:
      return &JitExec::OpStop;
    case IrOp::kArith:
      return &JitExec::OpArith;
    case IrOp::kAddmodMulmod:
      return &JitExec::OpAddmodMulmod;
    case IrOp::kCmp:
      return &JitExec::OpCmp;
    case IrOp::kIszero:
      return &JitExec::OpIszero;
    case IrOp::kBitwise:
      return &JitExec::OpBitwise;
    case IrOp::kNot:
      return &JitExec::OpNot;
    case IrOp::kByte:
      return &JitExec::OpByte;
    case IrOp::kShift:
      return &JitExec::OpShift;
    case IrOp::kKeccak:
      return &JitExec::OpKeccak;
    case IrOp::kAddress:
      return &JitExec::OpAddress;
    case IrOp::kBalance:
      return &JitExec::OpBalance;
    case IrOp::kSelfbalance:
      return &JitExec::OpSelfbalance;
    case IrOp::kOrigin:
      return &JitExec::OpOrigin;
    case IrOp::kCaller:
      return &JitExec::OpCaller;
    case IrOp::kCallvalue:
      return &JitExec::OpCallvalue;
    case IrOp::kCalldataload:
      return &JitExec::OpCalldataload;
    case IrOp::kCalldatasize:
      return &JitExec::OpCalldatasize;
    case IrOp::kCalldatacopy:
      return &JitExec::OpCalldatacopy;
    case IrOp::kCodesize:
      return &JitExec::OpCodesize;
    case IrOp::kCodecopy:
      return &JitExec::OpCodecopy;
    case IrOp::kGasprice:
      return &JitExec::OpGasprice;
    case IrOp::kReturndatasize:
      return &JitExec::OpReturndatasize;
    case IrOp::kReturndatacopy:
      return &JitExec::OpReturndatacopy;
    case IrOp::kBlockhash:
      return &JitExec::OpBlockhash;
    case IrOp::kBlockRead:
      return &JitExec::OpBlockRead;
    case IrOp::kPop:
      return &JitExec::OpPop;
    case IrOp::kMload:
      return &JitExec::OpMload;
    case IrOp::kMstore:
      return &JitExec::OpMstore;
    case IrOp::kMstore8:
      return &JitExec::OpMstore8;
    case IrOp::kSload:
      return &JitExec::OpSload;
    case IrOp::kSstore:
      return &JitExec::OpSstore;
    case IrOp::kJump:
      return &JitExec::OpJump;
    case IrOp::kJumpi:
      return &JitExec::OpJumpi;
    case IrOp::kPc:
      return &JitExec::OpPc;
    case IrOp::kMsize:
      return &JitExec::OpMsize;
    case IrOp::kGas:
      return &JitExec::OpGas;
    case IrOp::kJumpdest:
      return &JitExec::OpJumpdest;
    case IrOp::kReturnRevert:
      return &JitExec::OpReturnRevert;
    case IrOp::kInvalid:
      return &JitExec::OpInvalid;
    case IrOp::kSelfdestruct:
      return &JitExec::OpSelfdestruct;
    case IrOp::kCreate:
      return &JitExec::OpCreate;
    case IrOp::kCallFamily:
      return &JitExec::OpCallFamily;
    case IrOp::kPush:
      return &JitExec::OpPush;
    case IrOp::kDup:
      return &JitExec::OpDup;
    case IrOp::kSwap:
      return &JitExec::OpSwap;
    case IrOp::kLog:
      return &JitExec::OpLog;
    case IrOp::kUndefined:
      return &JitExec::OpUndefined;
    case IrOp::kPushJump:
      return &JitExec::OpPushJump;
    case IrOp::kPushJumpi:
      return &JitExec::OpPushJumpi;
    case IrOp::kDupSload:
      return &JitExec::OpDupSload;
    case IrOp::kPushPushArith:
      return &JitExec::OpPushPushArith;
    case IrOp::kEnd:
      return &JitExec::OpEnd;
    case IrOp::kBlockCheck:
      break;  // always inlined
  }
  return nullptr;
}

/// Bailout guard: contracts past this size keep the decoded interpreter (a
/// fuzzing corpus contract is a few KB; this is a DoS backstop, not a real
/// ceiling).
constexpr size_t kMaxJitInsns = size_t{1} << 18;

}  // namespace

std::shared_ptr<const CompiledCode> JitCompile(const DecodedCode& decoded) {
  const size_t n = decoded.insns.size();
  if (n == 0 || n > kMaxJitInsns) return nullptr;

  auto compiled = std::make_shared<CompiledCode>();
  // Pre-size the dynamic-jump table so its data pointer can be embedded in
  // the emitted code before the final addresses are known.
  compiled->insn_addr.assign(n, nullptr);

  Emitter e(n);
  // Prologue: keep rsp 16-aligned at helper call sites; rbx holds the frame.
  e.Seq({0x55});                    // push rbp
  e.Seq({0x53});                    // push rbx
  e.Seq({0x48, 0x83, 0xEC, 0x08});  // sub rsp, 8
  e.Seq({0x48, 0x89, 0xFB});        // mov rbx, rdi

  for (size_t i = 0; i < n; ++i) {
    const DecodedInsn* ins = &decoded.insns[i];
    e.MarkInsn(i);
    switch (ins->ir) {
      case IrOp::kBlockCheck: {
        // checked = sp < block_need || sp + block_peak > kMaxDepth.
        if (ins->block_need >= DecodedInsn::kBlockUnsafe) {
          e.SetChecked(1);
          break;
        }
        std::vector<size_t> to_checked;
        e.MovRaxFrame(kOffSp);
        if (ins->block_need > 0) {
          e.CmpRaxImm(ins->block_need);
          to_checked.push_back(e.JccFwd(kJb));
        }
        if (ins->block_peak > 0) {
          e.AddRaxImm(ins->block_peak);
          e.CmpRaxImm(static_cast<uint32_t>(Stack::kMaxDepth));
          to_checked.push_back(e.JccFwd(kJa));
        }
        e.SetChecked(0);
        if (!to_checked.empty()) {
          size_t over = e.JmpFwd8();  // skip the set-1 arm
          for (size_t pos : to_checked) e.Bind(pos);
          e.SetChecked(1);
          e.Bind8(over);
        }
        break;
      }
      case IrOp::kPush: {
        EmitBookkeep(e, ins->pc, ins->opcode, ins->gas);
        EmitOverflowCheck(e, static_cast<uint32_t>(Stack::kMaxDepth));
        EmitPushImm(e, ins->immediate);
        break;
      }
      case IrOp::kPop: {
        EmitBookkeep(e, ins->pc, ins->opcode, ins->gas);
        EmitArityCheck(e, ins->inputs);
        e.DecSp();
        break;
      }
      case IrOp::kJumpdest: {
        EmitBookkeep(e, ins->pc, ins->opcode, ins->gas);
        break;
      }
      case IrOp::kDup: {
        EmitBookkeep(e, ins->pc, ins->opcode, ins->gas);
        const int depth = DupDepth(ins->opcode);
        // Checked mode: underflow (sp < n) and overflow (sp >= 1024).
        e.CmpCheckedZero();
        size_t skip = e.JccFwd(kJe);
        e.CmpSpImm32(static_cast<uint32_t>(depth));
        e.JccStub(kJb, Emitter::kStubStackErr);
        e.CmpSpImm32(static_cast<uint32_t>(Stack::kMaxDepth));
        e.JccStub(kJae, Emitter::kStubStackErr);
        e.Bind(skip);
        // stack[sp] = stack[sp - n]; ++sp. 48-byte copy via xmm0.
        e.LoadStackTopRdx();
        const int32_t src = -48 * depth;
        for (int32_t part = 0; part < 48; part += 16) {
          e.MovupsLoad(0, src + part);
          e.MovupsStore(0, part);
        }
        e.IncSp();
        break;
      }
      case IrOp::kSwap: {
        EmitBookkeep(e, ins->pc, ins->opcode, ins->gas);
        const int depth = SwapDepth(ins->opcode);
        e.CmpCheckedZero();
        size_t skip = e.JccFwd(kJe);
        e.CmpSpImm32(static_cast<uint32_t>(depth) + 1);
        e.JccStub(kJb, Emitter::kStubStackErr);
        e.Bind(skip);
        // Swap stack[sp-1] <-> stack[sp-1-n], 48 bytes via xmm0..5.
        e.LoadStackTopRdx();
        const int32_t top = -48;
        const int32_t other = -48 - 48 * depth;
        for (int32_t part = 0; part < 48; part += 16) {
          e.MovupsLoad(static_cast<uint8_t>(part / 16), top + part);
          e.MovupsLoad(static_cast<uint8_t>(3 + part / 16), other + part);
        }
        for (int32_t part = 0; part < 48; part += 16) {
          e.MovupsStore(static_cast<uint8_t>(3 + part / 16), top + part);
          e.MovupsStore(static_cast<uint8_t>(part / 16), other + part);
        }
        break;
      }
      case IrOp::kPushJump: {
        // PUSH component bookkeeping + checked overflow test.
        EmitBookkeep(e, ins->pc, ins->opcode, ins->gas);
        EmitOverflowCheck(e, static_cast<uint32_t>(Stack::kMaxDepth));
        // JUMP component bookkeeping.
        EmitBookkeep(e, ins->pc2, ins->opcode2, ins->gas2);
        if (ins->jump_target < 0) {
          e.JmpStub(Emitter::kStubBadJump);
          break;
        }
        // Observer OnJump, then a direct native branch.
        e.MovRaxFrame(kOffObserver);
        e.TestRaxRax();
        size_t no_obs = e.JccFwd(kJe);
        e.MovRdiRbx();
        e.MovEsiImm(ins->pc2);
        e.MovEdxImm(static_cast<uint32_t>(ins->immediate.low64()));
        e.MovAbsRax(FnAddr(&JitExec::ThunkOnJump));
        e.CallRax();
        e.Bind(no_obs);
        e.JmpInsn(static_cast<size_t>(ins->jump_target));
        break;
      }
      case IrOp::kPushPushArith: {
        if (ins->folded_overflow) {
          // The folded op reports an overflow event: keep the helper.
          EmitHelperCall(e, &JitExec::OpPushPushArith, ins);
          EmitCtlNextDone(e);
          break;
        }
        EmitBookkeep(e, ins->pc, ins->opcode, ins->gas);
        EmitOverflowCheck(e, static_cast<uint32_t>(Stack::kMaxDepth));
        EmitBookkeep(e, ins->pc2, ins->opcode2, ins->gas2);
        // Byte path pushes a first, so b's overflow threshold is one lower.
        EmitOverflowCheck(e, static_cast<uint32_t>(Stack::kMaxDepth) - 1);
        EmitBookkeep(e, ins->pc3, ins->opcode3, ins->gas3);
        // The final push cannot overflow after the first test passed.
        EmitPushImm(e, ins->immediate);
        break;
      }
      case IrOp::kJump:
      case IrOp::kJumpi: {
        EmitHelperCall(e, HelperFor(ins->ir), ins);
        EmitCtlDynamic(e);
        break;
      }
      case IrOp::kPushJumpi: {
        EmitInlinePushJumpi(e, ins);
        break;
      }
      case IrOp::kArith: {
        const Op op = static_cast<Op>(ins->opcode);
        if (op == Op::kAdd || op == Op::kSub) {
          EmitInlineAddSub(e, ins, op == Op::kAdd);
          break;
        }
        // MUL/DIV/MOD/EXP/... keep the helper: multi-limb products and
        // quotients don't pay for inline emission.
        EmitHelperCall(e, &JitExec::OpArith, ins);
        EmitCtlNextDone(e);
        break;
      }
      case IrOp::kBitwise: {
        EmitInlineBitwise(e, ins);
        break;
      }
      default: {
        HelperFn fn = HelperFor(ins->ir);
        if (fn == nullptr) return nullptr;  // decoder emitted the impossible
        EmitHelperCall(e, fn, ins);
        EmitCtlNextDone(e);
        break;
      }
    }
  }

  // Shared stubs.
  e.MarkStub(Emitter::kStubEpilogue);
  e.Seq({0x48, 0x83, 0xC4, 0x08});  // add rsp, 8
  e.Seq({0x5B});                    // pop rbx
  e.Seq({0x5D});                    // pop rbp
  e.Seq({0xC3});                    // ret
  EmitFailStub(e, Emitter::kStubStepLimit, kFailStepLimit);
  EmitFailStub(e, Emitter::kStubOutOfGas, kFailOutOfGas);
  EmitFailStub(e, Emitter::kStubStackErr, kFailStackErr);
  EmitFailStub(e, Emitter::kStubBadJump, kFailBadJump);
  // Dynamic-jump stub: jmp insn_addr[frame->jump_ip].
  e.MarkStub(Emitter::kStubDynJump);
  e.MovRaxFrame(kOffJumpIp);
  e.MovAbsRcx(reinterpret_cast<uint64_t>(compiled->insn_addr.data()));
  e.Seq({0xFF, 0x24, 0xC1});  // jmp [rcx + rax*8]

  e.Finish();

  if (!compiled->arena.Allocate(e.buf().size())) return nullptr;
  std::memcpy(compiled->arena.data(), e.buf().data(), e.buf().size());
  if (!compiled->arena.Seal()) return nullptr;

  for (size_t i = 0; i < n; ++i) {
    compiled->insn_addr[i] = compiled->arena.data() + e.insn_off()[i];
  }
  compiled->entry =
      reinterpret_cast<CompiledCode::EntryFn>(compiled->arena.data());
  compiled->code_size = e.buf().size();
  return compiled;
}

#else  // !MUFUZZ_JIT_SUPPORTED

std::shared_ptr<const CompiledCode> JitCompile(const DecodedCode& decoded) {
  (void)decoded;
  return nullptr;
}

#endif  // MUFUZZ_JIT_SUPPORTED

}  // namespace mufuzz::evm
