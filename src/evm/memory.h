#ifndef MUFUZZ_EVM_MEMORY_H_
#define MUFUZZ_EVM_MEMORY_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/u256.h"

namespace mufuzz::evm {

/// Byte-addressed, word-expandable EVM memory.
///
/// Expansion is capped (kMaxBytes) so hostile offsets fail fast instead of
/// allocating; the interpreter treats a failed expansion as out-of-gas.
class Memory {
 public:
  static constexpr size_t kMaxBytes = 1u << 21;  // 2 MiB per frame.

  /// Expands to cover [offset, offset+len). Returns false if the request
  /// exceeds the cap or overflows.
  bool Expand(uint64_t offset, uint64_t len);

  /// Reads 32 bytes at `offset` as a big-endian word (expanding as needed).
  bool Load32(uint64_t offset, U256* out);

  /// Writes a 32-byte big-endian word at `offset`.
  bool Store32(uint64_t offset, const U256& value);

  /// Writes a single byte.
  bool Store8(uint64_t offset, uint8_t value);

  /// Copies `len` bytes from `src` (zero-padded past its end, as CALLDATACOPY
  /// does) into memory at `offset`.
  bool CopyIn(uint64_t offset, BytesView src, uint64_t src_offset,
              uint64_t len);

  /// Returns a copy of [offset, offset+len) (expanding as needed).
  bool CopyOut(uint64_t offset, uint64_t len, Bytes* out);

  /// In-place view of [offset, offset+len) (expanding as needed). Returns
  /// false if expansion fails. The view is invalidated by the next Expand /
  /// Store / CopyIn — callers must consume it before touching memory again.
  /// This is the zero-copy path for KECCAK256, which only reads the range.
  bool ViewOut(uint64_t offset, uint64_t len, BytesView* out) {
    if (len == 0) {
      *out = BytesView();
      return true;
    }
    if (len > kMaxBytes) return false;
    if (!Expand(offset, len)) return false;
    *out = BytesView(data_.data() + offset, len);
    return true;
  }

  /// Empties the memory, retaining capacity (frame-arena reuse); the next
  /// Expand re-zeroes whatever it covers, so a reused frame still sees
  /// all-zero memory.
  void Clear() { data_.clear(); }

  size_t size() const { return data_.size(); }
  /// Number of 32-byte words currently allocated (MSIZE).
  uint64_t SizeWords() const { return (data_.size() + 31) / 32; }

 private:
  Bytes data_;
};

}  // namespace mufuzz::evm

#endif  // MUFUZZ_EVM_MEMORY_H_
