#include "evm/async_backend.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace mufuzz::evm {

// ------------------------------------------------------ AsyncExecutionHub --

AsyncExecutionHub::AsyncExecutionHub(Options options, SessionPool* pool)
    : options_(options),
      session_pool_(pool),
      threads_(std::max(1, options.workers)) {
  options_.workers = std::max(1, options_.workers);
  if (options_.queue_capacity <= 0) {
    options_.queue_capacity = 4 * options_.workers;
  }
  running_loops_ = options_.workers;
  for (int w = 0; w < options_.workers; ++w) {
    threads_.Post([this, w] { WorkerLoop(static_cast<size_t>(w)); });
  }
}

size_t AsyncExecutionHub::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

AsyncExecutionHub::~AsyncExecutionHub() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!queue_.empty()) {
      std::fprintf(stderr,
                   "fatal: AsyncExecutionHub destroyed with jobs still "
                   "queued (unbind every adapter first)\n");
      std::abort();
    }
    stop_ = true;
  }
  queue_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  exited_cv_.wait(lock, [this] { return running_loops_ == 0; });
}

void AsyncExecutionHub::WorkerLoop(size_t index) {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stop_ is set and the queue drained: exit.
        --running_loops_;
        if (running_loops_ == 0) exited_cv_.notify_all();
        return;
      }
      job = queue_.front();
      queue_.pop_front();
    }
    capacity_cv_.notify_one();
    // Worker `index` always executes on the owning adapter's `index`-th
    // replica, so replicas never race and any worker yields the identical
    // outcome for a plan.
    SessionBackend* backend = job.owner->workers_[index].backend.get();
    backend->ExecuteSequenceInto(*job.plan, job.slot);
    bool batch_done;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --job.owner->in_flight_;
      batch_done = ++job.batch->completed == job.batch->plans.size();
    }
    // AwaitBatch is the only done_cv_ waiter and its predicate turns true
    // exactly at batch completion — per-job notifies would wake every
    // campaign parked on a shared hub once per execution.
    if (batch_done) done_cv_.notify_all();
  }
}

void AsyncExecutionHub::SubmitJobs(AsyncBackendAdapter* owner, Batch* batch) {
  // Enqueue under the capacity bound: a planner that outruns the workers
  // blocks here instead of growing the queue without limit. The bound is
  // hub-wide, so concurrent campaigns backpressure each other too.
  const size_t capacity = static_cast<size_t>(options_.queue_capacity);
  for (size_t i = 0; i < batch->plans.size(); ++i) {
    std::unique_lock<std::mutex> lock(mu_);
    capacity_cv_.wait(lock, [this, capacity] {
      return queue_.size() < capacity;
    });
    queue_.push_back(Job{&batch->plans[i], &batch->outcomes[i], batch, owner});
    ++owner->in_flight_;
    lock.unlock();
    queue_cv_.notify_one();
  }
}

void AsyncExecutionHub::AwaitBatch(std::unique_lock<std::mutex>& lock,
                                   Batch* batch) {
  done_cv_.wait(lock,
                [batch] { return batch->completed == batch->plans.size(); });
}

// ----------------------------------------------------- AsyncBackendAdapter --

AsyncBackendAdapter::AsyncBackendAdapter(Options options, SessionPool* pool)
    : owned_hub_(std::make_unique<AsyncExecutionHub>(options, pool)),
      hub_(owned_hub_.get()) {}

AsyncBackendAdapter::AsyncBackendAdapter()
    : AsyncBackendAdapter(Options()) {}

AsyncBackendAdapter::AsyncBackendAdapter(AsyncExecutionHub* hub)
    : hub_(hub) {}

AsyncBackendAdapter::~AsyncBackendAdapter() { Unbind(); }

void AsyncBackendAdapter::CheckBound(const char* op) const {
  if (!bound_) {
    std::fprintf(stderr, "fatal: AsyncBackendAdapter::%s before Bind()\n", op);
    std::abort();
  }
}

void AsyncBackendAdapter::CheckIdle(const char* op) const {
  size_t in_flight;
  {
    std::lock_guard<std::mutex> lock(hub_->mu_);
    in_flight = in_flight_;
  }
  if (in_flight != 0 || !batches_.empty()) {
    std::fprintf(stderr,
                 "fatal: AsyncBackendAdapter::%s while batches are in "
                 "flight (setup ops require an idle backend)\n",
                 op);
    std::abort();
  }
}

void AsyncBackendAdapter::Bind(Host* host, BlockContext block,
                               EvmConfig config) {
  CheckIdle("Bind");
  Unbind();
  const int workers = hub_->worker_count();
  workers_.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    Worker worker;
    worker.host = host->CloneForWorker();
    if (worker.host == nullptr) {
      std::fprintf(stderr,
                   "fatal: AsyncBackendAdapter requires a host that "
                   "implements CloneForWorker (a sequence-pure host); use a "
                   "SessionBackend for non-replicable hosts\n");
      std::abort();
    }
    worker.backend = hub_->session_pool() != nullptr
                         ? hub_->session_pool()->Acquire()
                         : std::make_unique<SessionBackend>();
    worker.backend->Bind(worker.host.get(), block, config);
    workers_.push_back(std::move(worker));
  }
  bound_ = true;
}

void AsyncBackendAdapter::Unbind() {
  CheckIdle("Unbind");
  for (Worker& worker : workers_) {
    if (hub_->session_pool() != nullptr && worker.backend != nullptr) {
      hub_->session_pool()->Release(std::move(worker.backend));
    } else if (worker.backend != nullptr) {
      worker.backend->Unbind();
    }
  }
  workers_.clear();
  bound_ = false;
}

Result<Address> AsyncBackendAdapter::DeployContract(const Bytes& runtime_code,
                                                    const Bytes& ctor_code,
                                                    const Bytes& ctor_args,
                                                    const Address& deployer,
                                                    const U256& value) {
  CheckBound("DeployContract");
  CheckIdle("DeployContract");
  std::optional<Result<Address>> first;
  for (Worker& worker : workers_) {
    Result<Address> result = worker.backend->DeployContract(
        runtime_code, ctor_code, ctor_args, deployer, value);
    if (!first.has_value()) {
      first = std::move(result);
    } else if (first->ok() != result.ok() ||
               (first->ok() && !(first->value() == result.value()))) {
      std::fprintf(stderr,
                   "fatal: worker sessions diverged during deployment — the "
                   "bound host's CloneForWorker is not sequence-pure\n");
      std::abort();
    }
  }
  return *first;
}

void AsyncBackendAdapter::FundAccount(const Address& addr,
                                      const U256& balance) {
  CheckBound("FundAccount");
  CheckIdle("FundAccount");
  for (Worker& worker : workers_) worker.backend->FundAccount(addr, balance);
}

void AsyncBackendAdapter::MarkDeployed() {
  CheckBound("MarkDeployed");
  CheckIdle("MarkDeployed");
  for (Worker& worker : workers_) worker.backend->MarkDeployed();
}

void AsyncBackendAdapter::Rewind() {
  CheckBound("Rewind");
  CheckIdle("Rewind");
  for (Worker& worker : workers_) worker.backend->Rewind();
}

SequenceOutcome AsyncBackendAdapter::ExecuteSequence(
    const SequencePlan& plan) {
  std::vector<SequencePlan> plans;
  plans.push_back(plan);
  return std::move(WaitBatch(SubmitBatch(std::move(plans))).front());
}

std::vector<SequenceOutcome> AsyncBackendAdapter::ExecuteSequenceBatch(
    std::span<const SequencePlan> plans) {
  return WaitBatch(
      SubmitBatch(std::vector<SequencePlan>(plans.begin(), plans.end())));
}

ExecutionBackend::BatchTicket AsyncBackendAdapter::SubmitBatch(
    std::vector<SequencePlan> plans) {
  CheckBound("SubmitBatch");
  BatchTicket ticket = next_async_ticket_++;
  std::unique_ptr<AsyncExecutionHub::Batch> owned;
  if (!batch_pool_.empty()) {
    owned = std::move(batch_pool_.back());
    batch_pool_.pop_back();
  } else {
    owned = std::make_unique<AsyncExecutionHub::Batch>();
  }
  owned->plans = std::move(plans);
  // Warm outcome slots from the recycle pool: workers ResetForReuse each
  // slot, so traces record into already-sized buffers.
  owned->outcomes = AcquireOutcomeBuffer(owned->plans.size());
  owned->completed = 0;
  AsyncExecutionHub::Batch* batch = owned.get();
  batches_.emplace(ticket, std::move(owned));
  hub_->SubmitJobs(this, batch);
  return ticket;
}

std::vector<SequenceOutcome> AsyncBackendAdapter::WaitBatch(
    BatchTicket ticket) {
  auto it = batches_.find(ticket);
  if (it == batches_.end()) {
    std::fprintf(stderr,
                 "fatal: WaitBatch(%llu) for an unknown or already-redeemed "
                 "ticket\n",
                 static_cast<unsigned long long>(ticket));
    std::abort();
  }
  AsyncExecutionHub::Batch* batch = it->second.get();
  {
    std::unique_lock<std::mutex> lock(hub_->mu_);
    hub_->AwaitBatch(lock, batch);
  }
  std::vector<SequenceOutcome> outcomes = std::move(batch->outcomes);
  // The spent plans go back to the planner (calldata capacity), the Batch
  // shell goes back to the batch pool — both client-thread-only stashes.
  StashSpentPlans(std::move(batch->plans));
  std::unique_ptr<AsyncExecutionHub::Batch> shell = std::move(it->second);
  batches_.erase(it);
  shell->plans.clear();
  shell->outcomes.clear();
  shell->completed = 0;
  if (batch_pool_.size() < 16) batch_pool_.push_back(std::move(shell));
  return outcomes;
}

CodeCacheStats AsyncBackendAdapter::code_cache_stats() const {
  CodeCacheStats total;
  std::vector<const CodeCache*> seen;
  for (const Worker& w : workers_) {
    const CodeCache* cache = w.backend->code_cache();
    if (cache == nullptr) continue;
    if (std::find(seen.begin(), seen.end(), cache) != seen.end()) continue;
    seen.push_back(cache);
    CodeCacheStats s = w.backend->code_cache_stats();
    total.entries += s.entries;
    total.hits += s.hits;
    total.misses += s.misses;
    total.decode_ns += s.decode_ns;
    total.jit_compiled += s.jit_compiled;
    total.jit_compile_ns += s.jit_compile_ns;
    total.jit_bailouts += s.jit_bailouts;
    total.jit_frames += s.jit_frames;
    total.interp_frames += s.interp_frames;
  }
  return total;
}

const WorldState& AsyncBackendAdapter::state() const {
  CheckBound("state");
  return workers_.front().backend->state();
}

}  // namespace mufuzz::evm
