#include "evm/async_backend.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace mufuzz::evm {

AsyncBackendAdapter::AsyncBackendAdapter(Options options, SessionPool* pool)
    : options_(options),
      session_pool_(pool),
      threads_(std::max(1, options.workers)) {
  options_.workers = std::max(1, options_.workers);
  if (options_.queue_capacity <= 0) {
    options_.queue_capacity = 4 * options_.workers;
  }
}

AsyncBackendAdapter::AsyncBackendAdapter()
    : AsyncBackendAdapter(Options()) {}

AsyncBackendAdapter::~AsyncBackendAdapter() { Unbind(); }

void AsyncBackendAdapter::CheckBound(const char* op) const {
  if (!bound_) {
    std::fprintf(stderr, "fatal: AsyncBackendAdapter::%s before Bind()\n", op);
    std::abort();
  }
}

void AsyncBackendAdapter::CheckIdle(const char* op) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_ != 0 || !batches_.empty()) {
    std::fprintf(stderr,
                 "fatal: AsyncBackendAdapter::%s while batches are in "
                 "flight (setup ops require an idle backend)\n",
                 op);
    std::abort();
  }
}

void AsyncBackendAdapter::Bind(Host* host, BlockContext block,
                               EvmConfig config) {
  StopWorkers();
  workers_.clear();
  workers_.reserve(options_.workers);
  for (int w = 0; w < options_.workers; ++w) {
    Worker worker;
    worker.host = host->CloneForWorker();
    if (worker.host == nullptr) {
      std::fprintf(stderr,
                   "fatal: AsyncBackendAdapter requires a host that "
                   "implements CloneForWorker (a sequence-pure host); use a "
                   "SessionBackend for non-replicable hosts\n");
      std::abort();
    }
    worker.backend = session_pool_ != nullptr
                         ? session_pool_->Acquire()
                         : std::make_unique<SessionBackend>();
    worker.backend->Bind(worker.host.get(), block, config);
    workers_.push_back(std::move(worker));
  }
  bound_ = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
    running_loops_ = options_.workers;
  }
  for (int w = 0; w < options_.workers; ++w) {
    threads_.Post([this, w] { WorkerLoop(static_cast<size_t>(w)); });
  }
}

void AsyncBackendAdapter::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_loops_ == 0) return;
    if (in_flight_ != 0) {
      std::fprintf(stderr,
                   "fatal: AsyncBackendAdapter stopped with batches still in "
                   "flight (WaitBatch every ticket before Unbind)\n");
      std::abort();
    }
    stop_ = true;
  }
  queue_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  exited_cv_.wait(lock, [this] { return running_loops_ == 0; });
}

void AsyncBackendAdapter::Unbind() {
  StopWorkers();
  for (Worker& worker : workers_) {
    if (session_pool_ != nullptr && worker.backend != nullptr) {
      session_pool_->Release(std::move(worker.backend));
    } else if (worker.backend != nullptr) {
      worker.backend->Unbind();
    }
  }
  workers_.clear();
  bound_ = false;
}

void AsyncBackendAdapter::WorkerLoop(size_t index) {
  SessionBackend* backend = workers_[index].backend.get();
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stop_ is set and the queue drained: exit.
        --running_loops_;
        if (running_loops_ == 0) exited_cv_.notify_all();
        return;
      }
      job = queue_.front();
      queue_.pop_front();
    }
    capacity_cv_.notify_one();
    *job.slot = backend->ExecuteSequence(*job.plan);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      ++job.batch->completed;
    }
    done_cv_.notify_all();
  }
}

Result<Address> AsyncBackendAdapter::DeployContract(const Bytes& runtime_code,
                                                    const Bytes& ctor_code,
                                                    const Bytes& ctor_args,
                                                    const Address& deployer,
                                                    const U256& value) {
  CheckBound("DeployContract");
  CheckIdle("DeployContract");
  std::optional<Result<Address>> first;
  for (Worker& worker : workers_) {
    Result<Address> result = worker.backend->DeployContract(
        runtime_code, ctor_code, ctor_args, deployer, value);
    if (!first.has_value()) {
      first = std::move(result);
    } else if (first->ok() != result.ok() ||
               (first->ok() && !(first->value() == result.value()))) {
      std::fprintf(stderr,
                   "fatal: worker sessions diverged during deployment — the "
                   "bound host's CloneForWorker is not sequence-pure\n");
      std::abort();
    }
  }
  return *first;
}

void AsyncBackendAdapter::FundAccount(const Address& addr,
                                      const U256& balance) {
  CheckBound("FundAccount");
  CheckIdle("FundAccount");
  for (Worker& worker : workers_) worker.backend->FundAccount(addr, balance);
}

void AsyncBackendAdapter::MarkDeployed() {
  CheckBound("MarkDeployed");
  CheckIdle("MarkDeployed");
  for (Worker& worker : workers_) worker.backend->MarkDeployed();
}

void AsyncBackendAdapter::Rewind() {
  CheckBound("Rewind");
  CheckIdle("Rewind");
  for (Worker& worker : workers_) worker.backend->Rewind();
}

SequenceOutcome AsyncBackendAdapter::ExecuteSequence(
    const SequencePlan& plan) {
  std::vector<SequencePlan> plans;
  plans.push_back(plan);
  return std::move(WaitBatch(SubmitBatch(std::move(plans))).front());
}

std::vector<SequenceOutcome> AsyncBackendAdapter::ExecuteSequenceBatch(
    std::span<const SequencePlan> plans) {
  return WaitBatch(
      SubmitBatch(std::vector<SequencePlan>(plans.begin(), plans.end())));
}

ExecutionBackend::BatchTicket AsyncBackendAdapter::SubmitBatch(
    std::vector<SequencePlan> plans) {
  CheckBound("SubmitBatch");
  Batch* batch = nullptr;
  BatchTicket ticket = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ticket = next_async_ticket_++;
    auto owned = std::make_unique<Batch>();
    owned->plans = std::move(plans);
    owned->outcomes.resize(owned->plans.size());
    batch = owned.get();
    batches_.emplace(ticket, std::move(owned));
  }
  // Enqueue under the capacity bound: a planner that outruns the workers
  // blocks here instead of growing the queue without limit.
  const size_t capacity = static_cast<size_t>(options_.queue_capacity);
  for (size_t i = 0; i < batch->plans.size(); ++i) {
    std::unique_lock<std::mutex> lock(mu_);
    capacity_cv_.wait(lock, [this, capacity] {
      return queue_.size() < capacity;
    });
    queue_.push_back(Job{&batch->plans[i], &batch->outcomes[i], batch});
    ++in_flight_;
    lock.unlock();
    queue_cv_.notify_one();
  }
  return ticket;
}

std::vector<SequenceOutcome> AsyncBackendAdapter::WaitBatch(
    BatchTicket ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = batches_.find(ticket);
  if (it == batches_.end()) {
    std::fprintf(stderr,
                 "fatal: WaitBatch(%llu) for an unknown or already-redeemed "
                 "ticket\n",
                 static_cast<unsigned long long>(ticket));
    std::abort();
  }
  Batch* batch = it->second.get();
  done_cv_.wait(lock,
                [batch] { return batch->completed == batch->plans.size(); });
  std::vector<SequenceOutcome> outcomes = std::move(batch->outcomes);
  batches_.erase(it);
  return outcomes;
}

const WorldState& AsyncBackendAdapter::state() const {
  CheckBound("state");
  return workers_.front().backend->state();
}

}  // namespace mufuzz::evm
