// The threaded-dispatch execution loop over pre-decoded IR (see
// evm/code_cache.h). This is the hot path of the whole system; the
// byte-switch loop in interpreter.cc survives as its differential oracle.
//
// Equivalence contract (pinned by tests/evm/decoded_dispatch_test.cc): for
// any bytecode and call, this loop produces the same ExecResult (outcome,
// output, gas_used), the same state-journal effects, the same comparison
// records, and the same observer-event stream — events carry original byte
// pcs — as RunFrameBytes. To that end every handler replicates the byte
// loop's per-instruction order exactly: step-limit check, (defined check),
// OnStep, gas charge, stack-arity check, then the operation. Fused
// superinstructions perform that bookkeeping once per original instruction.
//
// The per-op stack checks are hoisted to basic-block granularity: each
// block's leader carries (min entry height, peak growth) computed at decode
// time, and when the entry height proves the whole block safe the handlers
// skip arity/overflow checks and use the unchecked stack accessors. Blocks
// that cannot be proven safe (the error path) run with the byte loop's
// exact per-op checks, so a stack error aborts at the same instruction with
// the same partial event stream.

#include <unordered_map>

#include "common/keccak.h"
#include "evm/code_cache.h"
#include "evm/interpreter.h"
#include "evm/memory.h"
#include "evm/stack.h"

// Direct-threaded dispatch needs GNU computed goto; everything else (and
// -DMUFUZZ_PORTABLE_DISPATCH builds, which CI exercises) uses a portable
// switch loop over the same handler bodies.
#if !defined(MUFUZZ_PORTABLE_DISPATCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define MUFUZZ_THREADED_DISPATCH 1
#endif

namespace mufuzz::evm {

// One entry per IrOp, in enum order (the dispatch table and the switch are
// both generated from this list).
#define MUFUZZ_IR_OPS(X)                                                 \
  X(BlockCheck)                                                          \
  X(Stop)                                                                \
  X(Arith)                                                               \
  X(AddmodMulmod)                                                        \
  X(Cmp)                                                                 \
  X(Iszero)                                                              \
  X(Bitwise)                                                             \
  X(Not)                                                                 \
  X(Byte)                                                                \
  X(Shift)                                                               \
  X(Keccak)                                                              \
  X(Address)                                                             \
  X(Balance)                                                             \
  X(Selfbalance)                                                         \
  X(Origin)                                                              \
  X(Caller)                                                              \
  X(Callvalue)                                                           \
  X(Calldataload)                                                        \
  X(Calldatasize)                                                        \
  X(Calldatacopy)                                                        \
  X(Codesize)                                                            \
  X(Codecopy)                                                            \
  X(Gasprice)                                                            \
  X(Returndatasize)                                                      \
  X(Returndatacopy)                                                      \
  X(Blockhash)                                                           \
  X(BlockRead)                                                           \
  X(Pop)                                                                 \
  X(Mload)                                                               \
  X(Mstore)                                                              \
  X(Mstore8)                                                             \
  X(Sload)                                                               \
  X(Sstore)                                                              \
  X(Jump)                                                                \
  X(Jumpi)                                                               \
  X(Pc)                                                                  \
  X(Msize)                                                               \
  X(Gas)                                                                 \
  X(Jumpdest)                                                            \
  X(ReturnRevert)                                                        \
  X(Invalid)                                                             \
  X(Selfdestruct)                                                        \
  X(Create)                                                              \
  X(CallFamily)                                                          \
  X(Push)                                                                \
  X(Dup)                                                                 \
  X(Swap)                                                                \
  X(Log)                                                                 \
  X(Undefined)                                                           \
  X(PushJump)                                                            \
  X(PushJumpi)                                                           \
  X(DupSload)                                                            \
  X(PushPushArith)                                                       \
  X(End)

ExecResult Interpreter::RunFrameDecoded(const MessageCall& call,
                                        const DecodedCode& decoded) {
  const Bytes& code = decoded.code;
  const DecodedInsn* const insns = decoded.insns.data();
  const int32_t* const pc_to_insn = decoded.pc_to_insn.data();

  // Frame state lives in a pooled arena: warm containers checked out for
  // the duration of this frame (nested calls check out their own).
  ArenaLease lease(this);
  Stack& stack = lease.arena.stack;
  Memory& memory = lease.arena.memory;
  // Word-granular memory instrumentation, identical to the byte loop.
  using MemTag = MemTaintMap::Tag;
  MemTaintMap& mem_taint = lease.arena.mem_taint;
  Bytes& return_data = lease.arena.return_data;
  bool caller_guard_seen = false;
  uint64_t gas = call.gas;
  size_t ip = 0;        ///< index into decoded.insns
  bool checked = true;  ///< per-op stack checks on (kBlockCheck updates)
  const DecodedInsn* ins = insns;

  auto out_of_gas = [&]() {
    return ExecResult{Outcome::kOutOfGas, {}, call.gas};
  };
  auto stack_err = [&]() {
    return ExecResult{Outcome::kStackError, {}, call.gas - gas};
  };
  auto charge = [&](uint64_t amount) {
    if (gas < amount) return false;
    gas -= amount;
    return true;
  };

  auto mem_tag_load = [&](uint64_t offset) -> MemTag {
    MemTag tag;
    const MemTag* found = mem_taint.Find(offset / 32);
    if (found != nullptr) tag = *found;
    if (offset % 32 != 0) {
      found = mem_taint.Find(offset / 32 + 1);
      if (found != nullptr) {
        tag.taint |= found->taint;
        tag.call_id = -1;  // misaligned: call identity is lost
      }
    }
    return tag;
  };
  auto mem_taint_store = [&](uint64_t offset, uint64_t len, uint32_t taint,
                             int32_t call_id = -1) {
    if (len == 0) return;
    for (uint64_t w = offset / 32; w <= (offset + len - 1) / 32; ++w) {
      if (taint == 0 && call_id < 0) {
        mem_taint.Erase(w);
      } else {
        mem_taint.Set(w, MemTag{taint, call_id});
      }
    }
  };
  auto mem_taint_range = [&](uint64_t offset, uint64_t len) -> uint32_t {
    uint32_t t = 0;
    if (len == 0) return t;
    for (uint64_t w = offset / 32; w <= (offset + len - 1) / 32; ++w) {
      const MemTag* found = mem_taint.Find(w);
      if (found != nullptr) t |= found->taint;
    }
    return t;
  };

  // Executing a frame brings the callee account into existence (journaled).
  state_->Touch(call.to);

// Per-original-instruction bookkeeping, in the byte loop's exact order.
#define BOOKKEEP(pc_, opcode_, gas_)                         \
  do {                                                       \
    if (++steps_ > config_.max_steps) {                      \
      return ExecResult{Outcome::kStepLimit, {}, call.gas - gas}; \
    }                                                        \
    if (observer_ != nullptr) {                              \
      observer_->OnStep((pc_), (opcode_), call.depth);       \
    }                                                        \
    if (!charge(gas_)) return out_of_gas();                  \
  } while (0)

// Handler prologue for unfused instructions.
#define PRELUDE()                                                      \
  do {                                                                 \
    BOOKKEEP(ins->pc, ins->opcode, ins->gas);                          \
    if (checked && stack.size() < static_cast<size_t>(ins->inputs)) {  \
      return stack_err();                                              \
    }                                                                  \
  } while (0)

// Push that replicates the byte loop's overflow handling in checked mode
// and skips it in block-proven-safe mode.
#define PUSH_W(w)                                   \
  do {                                              \
    if (checked) {                                  \
      if (!stack.Push(w)) return stack_err();       \
    } else {                                        \
      stack.PushUnsafe(w);                          \
    }                                               \
  } while (0)

#ifdef MUFUZZ_THREADED_DISPATCH
#define HANDLER(name) lbl_##name:
#define DISPATCH()                                        \
  do {                                                    \
    ins = &insns[ip];                                     \
    goto* kDispatchTable[static_cast<int>(ins->ir)];      \
  } while (0)
#define MUFUZZ_LABEL_ENTRY(name) &&lbl_##name,
  static const void* const kDispatchTable[] = {
      MUFUZZ_IR_OPS(MUFUZZ_LABEL_ENTRY)};
  static_assert(true, "");  // require a trailing semicolon above
  DISPATCH();
#else
#define HANDLER(name) case IrOp::k##name:
#define DISPATCH() goto dispatch_top
dispatch_top:
  ins = &insns[ip];
  switch (ins->ir) {
#endif

// Every handler ends in DISPATCH() (or NEXT(), which advances first) or
// returns, so control never falls through between handlers in either
// dispatch flavor.
#define NEXT()   \
  do {           \
    ++ip;        \
    DISPATCH();  \
  } while (0)

  HANDLER(BlockCheck) {
    // The whole block is provably free of stack errors iff the entry height
    // covers the deepest pop and the peak growth stays under the cap.
    checked = stack.size() < ins->block_need ||
              stack.size() + ins->block_peak > Stack::kMaxDepth;
    NEXT();
  }

  HANDLER(Stop) {
    PRELUDE();
    return ExecResult{Outcome::kSuccess, {}, call.gas - gas};
  }

  HANDLER(Arith) {
    PRELUDE();
    Word x = stack.PopUnsafe();
    Word y = stack.PopUnsafe();
    U256 r;
    bool overflow = false;
    switch (static_cast<Op>(ins->opcode)) {
      case Op::kAdd:
        r = x.value + y.value;
        overflow = U256::AddOverflows(x.value, y.value);
        break;
      case Op::kMul:
        r = x.value * y.value;
        overflow = U256::MulOverflows(x.value, y.value);
        break;
      case Op::kSub:
        r = x.value - y.value;
        overflow = U256::SubUnderflows(x.value, y.value);
        break;
      case Op::kDiv:
        r = x.value / y.value;
        break;
      case Op::kSdiv:
        r = x.value.Sdiv(y.value);
        break;
      case Op::kMod:
        r = x.value % y.value;
        break;
      case Op::kSmod:
        r = x.value.Smod(y.value);
        break;
      case Op::kExp:
        r = x.value.Exp(y.value);
        break;
      case Op::kSignextend:
        r = y.value.SignExtend(x.value);
        break;
      default:
        break;
    }
    if (overflow && observer_ != nullptr) {
      observer_->OnOverflow({ins->pc, static_cast<Op>(ins->opcode),
                             x.taint | y.taint, false, call.depth});
    }
    PUSH_W(Word(r, x.taint | y.taint));
    NEXT();
  }

  HANDLER(AddmodMulmod) {
    PRELUDE();
    Word x = stack.PopUnsafe();
    Word y = stack.PopUnsafe();
    Word m = stack.PopUnsafe();
    U256 r = (static_cast<Op>(ins->opcode) == Op::kAddmod)
                 ? U256::AddMod(x.value, y.value, m.value)
                 : U256::MulMod(x.value, y.value, m.value);
    PUSH_W(Word(r, x.taint | y.taint | m.taint));
    NEXT();
  }

  HANDLER(Cmp) {
    PRELUDE();
    Word x = stack.PopUnsafe();
    Word y = stack.PopUnsafe();
    bool truth = false;
    CmpOp cmp_op = CmpOp::kEq;
    switch (static_cast<Op>(ins->opcode)) {
      case Op::kLt:
        truth = x.value < y.value;
        cmp_op = CmpOp::kLt;
        break;
      case Op::kGt:
        truth = x.value > y.value;
        cmp_op = CmpOp::kGt;
        break;
      case Op::kSlt:
        truth = x.value.Slt(y.value);
        cmp_op = CmpOp::kSlt;
        break;
      case Op::kSgt:
        truth = x.value.Sgt(y.value);
        cmp_op = CmpOp::kSgt;
        break;
      case Op::kEq:
        truth = x.value == y.value;
        cmp_op = CmpOp::kEq;
        break;
      default:
        break;
    }
    Word result(truth ? U256::One() : U256::Zero(), x.taint | y.taint);
    result.cmp_id = static_cast<int32_t>(cmp_records_.size());
    cmp_records_.push_back(
        {cmp_op, x.value, y.value, false, x.taint | y.taint});
    result.call_id = (x.call_id >= 0) ? x.call_id : y.call_id;
    PUSH_W(result);
    NEXT();
  }

  HANDLER(Iszero) {
    PRELUDE();
    Word x = stack.PopUnsafe();
    Word result(x.value.IsZero() ? U256::One() : U256::Zero(), x.taint);
    if (x.cmp_id >= 0) {
      // Negate the existing comparison so distance stays meaningful
      // through require()'s ISZERO chains.
      CmpRecord rec = cmp_records_[x.cmp_id];
      rec.negated = !rec.negated;
      result.cmp_id = static_cast<int32_t>(cmp_records_.size());
      cmp_records_.push_back(rec);
    } else {
      result.cmp_id = static_cast<int32_t>(cmp_records_.size());
      cmp_records_.push_back(
          {CmpOp::kIsZero, x.value, U256::Zero(), false, x.taint});
    }
    result.call_id = x.call_id;
    PUSH_W(result);
    NEXT();
  }

  HANDLER(Bitwise) {
    PRELUDE();
    Word x = stack.PopUnsafe();
    Word y = stack.PopUnsafe();
    U256 r;
    const Op op = static_cast<Op>(ins->opcode);
    if (op == Op::kAnd) r = x.value & y.value;
    if (op == Op::kOr) r = x.value | y.value;
    if (op == Op::kXor) r = x.value ^ y.value;
    Word result(r, x.taint | y.taint);
    result.call_id = (x.call_id >= 0) ? x.call_id : y.call_id;
    PUSH_W(result);
    NEXT();
  }

  HANDLER(Not) {
    PRELUDE();
    Word x = stack.PopUnsafe();
    PUSH_W(Word(~x.value, x.taint));
    NEXT();
  }

  HANDLER(Byte) {
    PRELUDE();
    Word i = stack.PopUnsafe();
    Word x = stack.PopUnsafe();
    PUSH_W(Word(x.value.Byte(i.value), x.taint | i.taint));
    NEXT();
  }

  HANDLER(Shift) {
    PRELUDE();
    Word shift = stack.PopUnsafe();
    Word x = stack.PopUnsafe();
    unsigned n = shift.value.FitsU64() && shift.value.low64() < 256
                     ? static_cast<unsigned>(shift.value.low64())
                     : 256;
    U256 r;
    const Op op = static_cast<Op>(ins->opcode);
    if (op == Op::kShl) r = x.value << n;
    if (op == Op::kShr) r = x.value >> n;
    if (op == Op::kSar) r = x.value.Sar(n);
    PUSH_W(Word(r, x.taint | shift.taint));
    NEXT();
  }

  HANDLER(Keccak) {
    PRELUDE();
    Word off = stack.PopUnsafe();
    Word len = stack.PopUnsafe();
    if (!off.value.FitsU64() || !len.value.FitsU64()) {
      return ExecResult{Outcome::kMemoryError, {}, call.gas - gas};
    }
    uint64_t offset = off.value.low64();
    uint64_t length = len.value.low64();
    if (!charge(6 * ((length + 31) / 32))) return out_of_gas();
    BytesView input;
    if (!memory.ViewOut(offset, length, &input)) {
      return ExecResult{Outcome::kMemoryError, {}, call.gas - gas};
    }
    auto digest = Keccak256(input);
    U256 r = U256::FromBytesBE(BytesView(digest.data(), 32)).value();
    PUSH_W(Word(r, mem_taint_range(offset, length)));
    NEXT();
  }

  HANDLER(Address) {
    PRELUDE();
    PUSH_W(Word(call.to.ToWord()));
    NEXT();
  }

  HANDLER(Balance) {
    PRELUDE();
    Word a = stack.PopUnsafe();
    Address addr = Address::FromWord(a.value);
    if (observer_ != nullptr) {
      observer_->OnBalanceRead({ins->pc, call.depth});
    }
    PUSH_W(Word(state_->GetBalance(addr), a.taint | kTaintBalance));
    NEXT();
  }

  HANDLER(Selfbalance) {
    PRELUDE();
    if (observer_ != nullptr) {
      observer_->OnBalanceRead({ins->pc, call.depth});
    }
    PUSH_W(Word(state_->GetBalance(call.to), kTaintBalance));
    NEXT();
  }

  HANDLER(Origin) {
    PRELUDE();
    PUSH_W(Word(call.origin.ToWord(), kTaintOrigin));
    NEXT();
  }

  HANDLER(Caller) {
    PRELUDE();
    PUSH_W(Word(call.caller.ToWord(), kTaintCaller));
    NEXT();
  }

  HANDLER(Callvalue) {
    PRELUDE();
    PUSH_W(Word(call.value, kTaintCallValue));
    NEXT();
  }

  HANDLER(Calldataload) {
    PRELUDE();
    Word off = stack.PopUnsafe();
    U256 v;
    if (off.value.FitsU64()) {
      uint64_t o = off.value.low64();
      uint8_t buf[32];
      for (int i = 0; i < 32; ++i) {
        buf[i] = (o + i < call.data.size()) ? call.data[o + i] : 0;
      }
      v = U256::FromBytesBE(BytesView(buf, 32)).value();
    }
    PUSH_W(Word(v, kTaintCalldata | off.taint));
    NEXT();
  }

  HANDLER(Calldatasize) {
    PRELUDE();
    PUSH_W(Word(U256(call.data.size())));
    NEXT();
  }

  HANDLER(Calldatacopy) {
    PRELUDE();
    Word dst = stack.PopUnsafe();
    Word src = stack.PopUnsafe();
    Word len = stack.PopUnsafe();
    if (!dst.value.FitsU64() || !len.value.FitsU64()) {
      return ExecResult{Outcome::kMemoryError, {}, call.gas - gas};
    }
    uint64_t src_off = src.value.FitsU64() ? src.value.low64() : UINT64_MAX;
    if (!memory.CopyIn(dst.value.low64(), call.data, src_off,
                       len.value.low64())) {
      return ExecResult{Outcome::kMemoryError, {}, call.gas - gas};
    }
    mem_taint_store(dst.value.low64(), len.value.low64(), kTaintCalldata);
    NEXT();
  }

  HANDLER(Codesize) {
    PRELUDE();
    PUSH_W(Word(U256(code.size())));
    NEXT();
  }

  HANDLER(Codecopy) {
    PRELUDE();
    Word dst = stack.PopUnsafe();
    Word src = stack.PopUnsafe();
    Word len = stack.PopUnsafe();
    if (!dst.value.FitsU64() || !len.value.FitsU64()) {
      return ExecResult{Outcome::kMemoryError, {}, call.gas - gas};
    }
    uint64_t src_off = src.value.FitsU64() ? src.value.low64() : UINT64_MAX;
    if (!memory.CopyIn(dst.value.low64(), code, src_off,
                       len.value.low64())) {
      return ExecResult{Outcome::kMemoryError, {}, call.gas - gas};
    }
    NEXT();
  }

  HANDLER(Gasprice) {
    PRELUDE();
    PUSH_W(Word(U256(1)));
    NEXT();
  }

  HANDLER(Returndatasize) {
    PRELUDE();
    PUSH_W(Word(U256(return_data.size())));
    NEXT();
  }

  HANDLER(Returndatacopy) {
    PRELUDE();
    Word dst = stack.PopUnsafe();
    Word src = stack.PopUnsafe();
    Word len = stack.PopUnsafe();
    if (!dst.value.FitsU64() || !len.value.FitsU64()) {
      return ExecResult{Outcome::kMemoryError, {}, call.gas - gas};
    }
    uint64_t src_off = src.value.FitsU64() ? src.value.low64() : UINT64_MAX;
    if (!memory.CopyIn(dst.value.low64(), return_data, src_off,
                       len.value.low64())) {
      return ExecResult{Outcome::kMemoryError, {}, call.gas - gas};
    }
    NEXT();
  }

  HANDLER(Blockhash) {
    PRELUDE();
    Word n = stack.PopUnsafe();
    Bytes seed;
    AppendU64BE(&seed, n.value.low64());
    auto digest = Keccak256(seed);
    if (observer_ != nullptr) {
      observer_->OnBlockRead(
          {ins->pc, static_cast<Op>(ins->opcode), call.depth});
    }
    PUSH_W(Word(U256::FromBytesBE(BytesView(digest.data(), 32)).value(),
                kTaintBlock));
    NEXT();
  }

  HANDLER(BlockRead) {
    PRELUDE();
    U256 v;
    switch (static_cast<Op>(ins->opcode)) {
      case Op::kCoinbase:
        v = block_.coinbase.ToWord();
        break;
      case Op::kTimestamp:
        v = U256(block_.timestamp);
        break;
      case Op::kNumber:
        v = U256(block_.number);
        break;
      case Op::kDifficulty:
        v = block_.difficulty;
        break;
      case Op::kGaslimit:
        v = U256(block_.gas_limit);
        break;
      default:
        break;
    }
    if (observer_ != nullptr) {
      observer_->OnBlockRead(
          {ins->pc, static_cast<Op>(ins->opcode), call.depth});
    }
    PUSH_W(Word(v, kTaintBlock));
    NEXT();
  }

  HANDLER(Pop) {
    PRELUDE();
    (void)stack.PopUnsafe();
    NEXT();
  }

  HANDLER(Mload) {
    PRELUDE();
    Word off = stack.PopUnsafe();
    if (!off.value.FitsU64()) {
      return ExecResult{Outcome::kMemoryError, {}, call.gas - gas};
    }
    U256 v;
    if (!memory.Load32(off.value.low64(), &v)) {
      return ExecResult{Outcome::kMemoryError, {}, call.gas - gas};
    }
    MemTag tag = mem_tag_load(off.value.low64());
    Word loaded(v, tag.taint);
    loaded.call_id = tag.call_id;
    PUSH_W(loaded);
    NEXT();
  }

  HANDLER(Mstore) {
    PRELUDE();
    Word off = stack.PopUnsafe();
    Word val = stack.PopUnsafe();
    if (!off.value.FitsU64() ||
        !memory.Store32(off.value.low64(), val.value)) {
      return ExecResult{Outcome::kMemoryError, {}, call.gas - gas};
    }
    mem_taint_store(off.value.low64(), 32, val.taint, val.call_id);
    NEXT();
  }

  HANDLER(Mstore8) {
    PRELUDE();
    Word off = stack.PopUnsafe();
    Word val = stack.PopUnsafe();
    if (!off.value.FitsU64() ||
        !memory.Store8(off.value.low64(),
                       static_cast<uint8_t>(val.value.low64() & 0xff))) {
      return ExecResult{Outcome::kMemoryError, {}, call.gas - gas};
    }
    mem_taint_store(off.value.low64(), 1, val.taint);
    NEXT();
  }

  HANDLER(Sload) {
    PRELUDE();
    Word key = stack.PopUnsafe();
    // One account probe for value + taint (Touch pinned the account).
    const Account* acct = state_->Find(call.to);
    U256 v = acct ? acct->storage.Load(key.value) : U256::Zero();
    uint32_t t =
        kTaintStorage | (acct ? acct->storage.LoadTaint(key.value) : 0);
    PUSH_W(Word(v, t));
    NEXT();
  }

  HANDLER(Sstore) {
    PRELUDE();
    if (call.is_static) {
      return ExecResult{Outcome::kStaticViolation, {}, call.gas - gas};
    }
    Word key = stack.PopUnsafe();
    Word val = stack.PopUnsafe();
    state_->SetStorage(call.to, key.value, val.value, val.taint);
    if (observer_ != nullptr) {
      observer_->OnStore(
          {ins->pc, key.value, val.value, val.taint, call.depth});
    }
    NEXT();
  }

  HANDLER(Jump) {
    PRELUDE();
    Word dest = stack.PopUnsafe();
    // Same truncation quirk as the byte path: FitsU64, then the low 64 bits
    // truncated to uint32 before validation.
    uint32_t d32 = static_cast<uint32_t>(dest.value.low64());
    if (!dest.value.FitsU64() || d32 >= code.size() || pc_to_insn[d32] < 0) {
      return ExecResult{Outcome::kBadJump, {}, call.gas - gas};
    }
    if (observer_ != nullptr) observer_->OnJump(ins->pc, d32, call.depth);
    ip = static_cast<size_t>(pc_to_insn[d32]);
    DISPATCH();
  }

  HANDLER(Jumpi) {
    PRELUDE();
    Word dest = stack.PopUnsafe();
    Word cond = stack.PopUnsafe();
    bool taken = !cond.value.IsZero();
    if (observer_ != nullptr) {
      BranchEvent ev;
      ev.pc = ins->pc;
      ev.dest = dest.value.FitsU64()
                    ? static_cast<uint32_t>(dest.value.low64())
                    : 0;
      ev.taken = taken;
      ev.cmp_id = cond.cmp_id;
      ev.call_id = cond.call_id;
      ev.cond_taint = cond.taint;
      ev.depth = call.depth;
      observer_->OnBranch(ev);
      if (cond.call_id >= 0) {
        observer_->OnCallResultChecked(cond.call_id);
      }
    }
    if (cond.taint & kTaintCaller) caller_guard_seen = true;
    if (taken) {
      uint32_t d32 = static_cast<uint32_t>(dest.value.low64());
      if (!dest.value.FitsU64() || d32 >= code.size() ||
          pc_to_insn[d32] < 0) {
        return ExecResult{Outcome::kBadJump, {}, call.gas - gas};
      }
      ip = static_cast<size_t>(pc_to_insn[d32]);
      DISPATCH();
    }
    NEXT();
  }

  HANDLER(Pc) {
    PRELUDE();
    PUSH_W(Word(U256(ins->pc)));
    NEXT();
  }

  HANDLER(Msize) {
    PRELUDE();
    PUSH_W(Word(U256(memory.SizeWords() * 32)));
    NEXT();
  }

  HANDLER(Gas) {
    PRELUDE();
    PUSH_W(Word(U256(gas)));
    NEXT();
  }

  HANDLER(Jumpdest) {
    PRELUDE();
    NEXT();
  }

  HANDLER(ReturnRevert) {
    PRELUDE();
    Word off = stack.PopUnsafe();
    Word len = stack.PopUnsafe();
    Bytes out;
    if (off.value.FitsU64() && len.value.FitsU64()) {
      if (!memory.CopyOut(off.value.low64(), len.value.low64(), &out)) {
        return ExecResult{Outcome::kMemoryError, {}, call.gas - gas};
      }
    }
    return ExecResult{static_cast<Op>(ins->opcode) == Op::kReturn
                          ? Outcome::kSuccess
                          : Outcome::kRevert,
                      std::move(out), call.gas - gas};
  }

  HANDLER(Invalid) {
    PRELUDE();
    return ExecResult{Outcome::kInvalidOp, {}, call.gas};
  }

  HANDLER(Selfdestruct) {
    PRELUDE();
    if (call.is_static) {
      return ExecResult{Outcome::kStaticViolation, {}, call.gas - gas};
    }
    Word beneficiary = stack.PopUnsafe();
    Address to = Address::FromWord(beneficiary.value);
    U256 balance = state_->GetBalance(call.to);
    state_->SetBalance(call.to, U256::Zero());
    state_->MarkSelfDestructed(call.to);
    // Read `to` after zeroing the self balance so to == self nets right.
    state_->SetBalance(to, state_->GetBalance(to) + balance);
    if (observer_ != nullptr) {
      observer_->OnSelfdestruct(
          {ins->pc, to, caller_guard_seen, call.depth});
    }
    return ExecResult{Outcome::kSuccess, {}, call.gas - gas};
  }

  HANDLER(Create) {
    PRELUDE();
    // Contract creation from within contracts is out of scope for the
    // MiniSol corpus; treat as an invalid operation.
    return ExecResult{Outcome::kInvalidOp, {}, call.gas};
  }

  HANDLER(CallFamily) {
    PRELUDE();
    const Op op = static_cast<Op>(ins->opcode);
    bool has_value = (op == Op::kCall || op == Op::kCallcode);
    Word gas_w = stack.PopUnsafe();
    Word to_w = stack.PopUnsafe();
    Word value_w;
    if (has_value) value_w = stack.PopUnsafe();
    Word in_off = stack.PopUnsafe();
    Word in_len = stack.PopUnsafe();
    Word out_off = stack.PopUnsafe();
    Word out_len = stack.PopUnsafe();

    if (!in_off.value.FitsU64() || !in_len.value.FitsU64() ||
        !out_off.value.FitsU64() || !out_len.value.FitsU64()) {
      return ExecResult{Outcome::kMemoryError, {}, call.gas - gas};
    }
    Bytes input;
    if (!memory.CopyOut(in_off.value.low64(), in_len.value.low64(),
                        &input)) {
      return ExecResult{Outcome::kMemoryError, {}, call.gas - gas};
    }

    Address target = Address::FromWord(to_w.value);
    U256 value = has_value ? value_w.value : U256::Zero();
    if (!value.IsZero()) {
      if (!charge(9000)) return out_of_gas();
    }
    uint64_t gas_requested =
        gas_w.value.FitsU64() ? gas_w.value.low64() : gas;
    uint64_t gas_forwarded = std::min(gas_requested, gas);
    if (!value.IsZero()) gas_forwarded += 2300;  // call stipend

    int32_t call_id = next_call_id_++;
    CallEvent ev;
    ev.pc = ins->pc;
    ev.kind = op;
    ev.target = target;
    ev.value = value;
    ev.gas = gas_forwarded;
    ev.target_taint = to_w.taint;
    ev.value_taint = has_value ? value_w.taint : kTaintNone;
    ev.depth = call.depth;
    ev.call_id = call_id;
    ev.caller_guard_seen = caller_guard_seen;

    bool success = false;
    Bytes child_output;
    const Account* target_acct = state_->Find(target);
    bool target_has_code = target_acct != nullptr &&
                           target_acct->HasCode() &&
                           op != Op::kCallcode;
    ev.to_external = !target_has_code;

    if (call.is_static && !value.IsZero()) {
      success = false;
    } else if (target_has_code) {
      // Nested message call into another in-state contract.
      MessageCall child;
      if (op == Op::kDelegatecall) {
        child.to = call.to;              // keep storage context
        child.code_address = target;     // borrow code
        child.caller = call.caller;
        child.value = call.value;
      } else {
        child.to = target;
        child.code_address = target;
        child.caller = call.to;
        child.value = value;
      }
      child.origin = call.origin;
      child.data = input;
      child.gas = gas_forwarded;
      child.is_static = call.is_static || op == Op::kStaticcall;
      child.depth = call.depth + 1;

      size_t snapshot = state_->Snapshot();
      bool transfer_ok = true;
      if (!value.IsZero() && op == Op::kCall) {
        transfer_ok = state_->Transfer(call.to, target, value);
      }
      if (transfer_ok) {
        ExecResult child_result = RunFrame(child);
        uint64_t used = std::min(child_result.gas_used, gas);
        gas -= used;
        success = child_result.Success();
        child_output = std::move(child_result.output);
        if (success) {
          state_->Commit(snapshot);
        } else {
          state_->RevertTo(snapshot);
        }
      } else {
        state_->RevertTo(snapshot);
        success = false;
      }
    } else {
      // External (code-less) target: host decides; value moves first.
      bool transfer_ok = true;
      if (!value.IsZero()) {
        transfer_ok = state_->Transfer(call.to, target, value);
      }
      if (transfer_ok) {
        ExternalCallRequest req;
        req.caller = call.to;
        req.target = target;
        req.value = value;
        req.data = input;
        req.gas = gas_forwarded;
        req.kind = op;
        req.depth = call.depth;
        ExternalCallOutcome outcome = host_->OnExternalCall(req, this);
        success = outcome.success;
        child_output = std::move(outcome.return_data);
        if (!success && !value.IsZero()) {
          // Failed call returns the value.
          state_->Transfer(target, call.to, value);
        }
      } else {
        success = false;
      }
    }

    ev.success = success;
    if (observer_ != nullptr) observer_->OnCall(ev);

    return_data = child_output;
    uint64_t copy_len =
        std::min<uint64_t>(out_len.value.low64(), child_output.size());
    if (copy_len > 0) {
      if (!memory.CopyIn(out_off.value.low64(), child_output, 0,
                         copy_len)) {
        return ExecResult{Outcome::kMemoryError, {}, call.gas - gas};
      }
    }
    Word status(success ? U256::One() : U256::Zero(), kTaintCallResult);
    status.call_id = call_id;
    PUSH_W(status);
    NEXT();
  }

  HANDLER(Push) {
    PRELUDE();
    PUSH_W(Word(ins->immediate));
    NEXT();
  }

  HANDLER(Dup) {
    PRELUDE();
    int n = DupDepth(ins->opcode);
    if (checked) {
      if (!stack.Dup(n)) return stack_err();
    } else {
      stack.PushUnsafe(Word(stack.TopUnsafe(n - 1)));
    }
    NEXT();
  }

  HANDLER(Swap) {
    PRELUDE();
    int n = SwapDepth(ins->opcode);
    if (checked) {
      if (!stack.Swap(n)) return stack_err();
    } else {
      stack.SwapUnsafe(n);
    }
    NEXT();
  }

  HANDLER(Log) {
    PRELUDE();
    (void)stack.PopUnsafe();
    (void)stack.PopUnsafe();
    for (int i = 0; i < LogTopics(ins->opcode); ++i) {
      (void)stack.PopUnsafe();
    }
    NEXT();
  }

  HANDLER(Undefined) {
    // The byte path bails before OnStep and the gas charge — but after the
    // step-limit bump.
    if (++steps_ > config_.max_steps) {
      return ExecResult{Outcome::kStepLimit, {}, call.gas - gas};
    }
    return ExecResult{Outcome::kInvalidOp, {}, call.gas};
  }

  HANDLER(PushJump) {
    // PUSH component. The pushed word is consumed by the JUMP immediately,
    // so it never materializes — but the overflow the byte path would hit
    // must still be reported in checked mode.
    BOOKKEEP(ins->pc, ins->opcode, ins->gas);
    if (checked && stack.size() >= Stack::kMaxDepth) return stack_err();
    // JUMP component (its arity is satisfied by the virtual push).
    BOOKKEEP(ins->pc2, ins->opcode2, ins->gas2);
    if (ins->jump_target < 0) {
      return ExecResult{Outcome::kBadJump, {}, call.gas - gas};
    }
    if (observer_ != nullptr) {
      observer_->OnJump(ins->pc2,
                        static_cast<uint32_t>(ins->immediate.low64()),
                        call.depth);
    }
    ip = static_cast<size_t>(ins->jump_target);
    DISPATCH();
  }

  HANDLER(PushJumpi) {
    // PUSH dest component.
    BOOKKEEP(ins->pc, ins->opcode, ins->gas);
    if (checked && stack.size() >= Stack::kMaxDepth) return stack_err();
    // JUMPI component: needs the condition under the virtual dest.
    BOOKKEEP(ins->pc2, ins->opcode2, ins->gas2);
    if (checked && stack.size() < 1) return stack_err();
    Word cond = stack.PopUnsafe();
    bool taken = !cond.value.IsZero();
    if (observer_ != nullptr) {
      BranchEvent ev;
      ev.pc = ins->pc2;
      ev.dest = ins->immediate.FitsU64()
                    ? static_cast<uint32_t>(ins->immediate.low64())
                    : 0;
      ev.taken = taken;
      ev.cmp_id = cond.cmp_id;
      ev.call_id = cond.call_id;
      ev.cond_taint = cond.taint;
      ev.depth = call.depth;
      observer_->OnBranch(ev);
      if (cond.call_id >= 0) {
        observer_->OnCallResultChecked(cond.call_id);
      }
    }
    if (cond.taint & kTaintCaller) caller_guard_seen = true;
    if (taken) {
      if (ins->jump_target < 0) {
        return ExecResult{Outcome::kBadJump, {}, call.gas - gas};
      }
      ip = static_cast<size_t>(ins->jump_target);
      DISPATCH();
    }
    NEXT();
  }

  HANDLER(DupSload) {
    // DUPn component: the duplicated key never round-trips through the
    // stack; it is read in place below.
    BOOKKEEP(ins->pc, ins->opcode, ins->gas);
    int n = DupDepth(ins->opcode);
    if (checked) {
      if (stack.size() < static_cast<size_t>(n)) return stack_err();
      if (stack.size() >= Stack::kMaxDepth) return stack_err();
    }
    // SLOAD component (arity satisfied by the virtual dup).
    BOOKKEEP(ins->pc2, ins->opcode2, ins->gas2);
    U256 key = stack.TopUnsafe(n - 1).value;  // SLOAD discards the key taint
    const Account* acct = state_->Find(call.to);
    U256 v = acct ? acct->storage.Load(key) : U256::Zero();
    uint32_t t = kTaintStorage | (acct ? acct->storage.LoadTaint(key) : 0);
    // Net effect of DUP + SLOAD is one push; the byte path's SLOAD push can
    // never overflow after the dup succeeded, so the unchecked push is
    // exact in both modes.
    stack.PushUnsafe(Word(v, t));
    NEXT();
  }

  HANDLER(PushPushArith) {
    // PUSH a component.
    BOOKKEEP(ins->pc, ins->opcode, ins->gas);
    if (checked && stack.size() >= Stack::kMaxDepth) return stack_err();
    // PUSH b component: the byte path pushes a first, so its overflow
    // threshold is one lower.
    BOOKKEEP(ins->pc2, ins->opcode2, ins->gas2);
    if (checked && stack.size() + 1 >= Stack::kMaxDepth) return stack_err();
    // Folded arithmetic component (arity satisfied by the virtual pushes).
    BOOKKEEP(ins->pc3, ins->opcode3, ins->gas3);
    if (ins->folded_overflow && observer_ != nullptr) {
      observer_->OnOverflow({ins->pc3, static_cast<Op>(ins->opcode3),
                             kTaintNone, false, call.depth});
    }
    PUSH_W(Word(ins->immediate));
    NEXT();
  }

  HANDLER(End) {
    // Fell off the end of the code: implicit STOP (no step, no charge).
    return ExecResult{Outcome::kSuccess, {}, call.gas - gas};
  }

#ifndef MUFUZZ_THREADED_DISPATCH
  }
  // Unreachable: every IrOp has a case and every case returns or jumps.
  return ExecResult{Outcome::kSuccess, {}, call.gas - gas};
#endif

#undef NEXT
#undef DISPATCH
#undef HANDLER
#undef PUSH_W
#undef PRELUDE
#undef BOOKKEEP
#ifdef MUFUZZ_LABEL_ENTRY
#undef MUFUZZ_LABEL_ENTRY
#endif
}

#undef MUFUZZ_IR_OPS

}  // namespace mufuzz::evm
