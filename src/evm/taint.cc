#include "evm/taint.h"

namespace mufuzz::evm {

std::string TaintToString(uint32_t taint) {
  if (taint == kTaintNone) return "none";
  static constexpr struct {
    TaintBit bit;
    const char* name;
  } kNames[] = {
      {kTaintBlock, "block"},           {kTaintCalldata, "calldata"},
      {kTaintCaller, "caller"},         {kTaintOrigin, "origin"},
      {kTaintBalance, "balance"},       {kTaintCallResult, "call_result"},
      {kTaintCallValue, "call_value"},  {kTaintStorage, "storage"},
  };
  std::string out;
  for (const auto& entry : kNames) {
    if (taint & entry.bit) {
      if (!out.empty()) out += "|";
      out += entry.name;
    }
  }
  return out;
}

}  // namespace mufuzz::evm
