#ifndef MUFUZZ_EVM_JIT_COMPILER_H_
#define MUFUZZ_EVM_JIT_COMPILER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "evm/jit_arena.h"

// The baseline JIT targets x86-64 SysV and needs W^X-capable anonymous
// mappings; everything else (and -DMUFUZZ_PORTABLE_DISPATCH builds, which
// CI exercises as the fallback proof) degrades to the decoded interpreter.
#if defined(__x86_64__) && (defined(__unix__) || defined(__APPLE__)) && \
    !defined(MUFUZZ_PORTABLE_DISPATCH)
#define MUFUZZ_JIT_SUPPORTED 1
#endif

namespace mufuzz::evm {

struct DecodedCode;

/// The native state one compiled frame hands to the emitted code, at fixed
/// offsets the emitter bakes in (static_asserted in jit_compiler.cc). The
/// full JitFrame (memory, taint map, interpreter back-pointers) lives behind
/// this prefix on the C++ side; emitted code touches only these fields and
/// reaches everything else through the per-IrOp helper calls.
struct JitFrameRaw {
  void* stack = nullptr;        ///< Word[kMaxDepth], uninitialized above sp
  uint64_t sp = 0;              ///< operand-stack height
  uint64_t gas = 0;             ///< remaining gas of this frame
  uint64_t* steps_ptr = nullptr;  ///< &Interpreter::steps_ (shared, nested)
  uint64_t max_steps = 0;
  void* observer = nullptr;     ///< ExecObserver*, null = no instrumentation
  uint64_t jump_ip = 0;         ///< dynamic-jump target (insn index)
  uint8_t checked = 1;          ///< per-op stack checks on (kBlockCheck sets)
  uint64_t caller_guard = 0;    ///< nonzero once a caller-tainted JUMPI ran
  int32_t depth = 0;            ///< MessageCall::depth (observer events)
};

/// One contract's native code: the sealed arena plus the per-instruction
/// entry table dynamic jumps dispatch through. Immutable once built; shared
/// across sessions and hub replicas via the owning DecodedCode's JitState.
struct CompiledCode {
  using EntryFn = void (*)(JitFrameRaw*);

  EntryFn entry = nullptr;
  JitArena arena;
  /// Native address of every IR instruction. Pre-sized before emission so
  /// its data pointer can be embedded in the code; indexed by the insn index
  /// a JUMP/JUMPI resolves through DecodedCode::pc_to_insn.
  std::vector<const void*> insn_addr;
  size_t code_size = 0;  ///< emitted bytes (<= arena.size())
};

/// True when this build can emit and run native code (x86-64, POSIX, and
/// not a portable-dispatch build). When false every kJit frame runs the
/// decoded interpreter.
bool JitAvailable();

/// Compiles a decode into native subroutine-threaded code. Returns nullptr
/// on bailout (unsupported build, oversized code, mmap/mprotect refusal) —
/// the caller records the bailout and pins the decoded interpreter.
std::shared_ptr<const CompiledCode> JitCompile(const DecodedCode& decoded);

}  // namespace mufuzz::evm

#endif  // MUFUZZ_EVM_JIT_COMPILER_H_
