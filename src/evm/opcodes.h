#ifndef MUFUZZ_EVM_OPCODES_H_
#define MUFUZZ_EVM_OPCODES_H_

#include <cstdint>
#include <string>

namespace mufuzz::evm {

/// EVM opcodes (the subset a Solidity-style compiler emits, which is what the
/// MiniSol code generator produces and the interpreter executes).
enum class Op : uint8_t {
  kStop = 0x00,
  kAdd = 0x01,
  kMul = 0x02,
  kSub = 0x03,
  kDiv = 0x04,
  kSdiv = 0x05,
  kMod = 0x06,
  kSmod = 0x07,
  kAddmod = 0x08,
  kMulmod = 0x09,
  kExp = 0x0a,
  kSignextend = 0x0b,

  kLt = 0x10,
  kGt = 0x11,
  kSlt = 0x12,
  kSgt = 0x13,
  kEq = 0x14,
  kIszero = 0x15,
  kAnd = 0x16,
  kOr = 0x17,
  kXor = 0x18,
  kNot = 0x19,
  kByte = 0x1a,
  kShl = 0x1b,
  kShr = 0x1c,
  kSar = 0x1d,

  kKeccak256 = 0x20,

  kAddress = 0x30,
  kBalance = 0x31,
  kOrigin = 0x32,
  kCaller = 0x33,
  kCallvalue = 0x34,
  kCalldataload = 0x35,
  kCalldatasize = 0x36,
  kCalldatacopy = 0x37,
  kCodesize = 0x38,
  kCodecopy = 0x39,
  kGasprice = 0x3a,
  kReturndatasize = 0x3d,
  kReturndatacopy = 0x3e,

  kBlockhash = 0x40,
  kCoinbase = 0x41,
  kTimestamp = 0x42,
  kNumber = 0x43,
  kDifficulty = 0x44,
  kGaslimit = 0x45,
  kSelfbalance = 0x47,

  kPop = 0x50,
  kMload = 0x51,
  kMstore = 0x52,
  kMstore8 = 0x53,
  kSload = 0x54,
  kSstore = 0x55,
  kJump = 0x56,
  kJumpi = 0x57,
  kPc = 0x58,
  kMsize = 0x59,
  kGas = 0x5a,
  kJumpdest = 0x5b,

  kPush1 = 0x60,
  // ... PUSH2..PUSH31 fill 0x61..0x7e ...
  kPush32 = 0x7f,
  kDup1 = 0x80,
  kDup16 = 0x8f,
  kSwap1 = 0x90,
  kSwap16 = 0x9f,
  kLog0 = 0xa0,
  kLog4 = 0xa4,

  kCreate = 0xf0,
  kCall = 0xf1,
  kCallcode = 0xf2,
  kReturn = 0xf3,
  kDelegatecall = 0xf4,
  kStaticcall = 0xfa,
  kRevert = 0xfd,
  kInvalid = 0xfe,
  kSelfdestruct = 0xff,
};

/// Static metadata for one opcode.
struct OpInfo {
  const char* name;     ///< Mnemonic ("ADD", "PUSH3", ...).
  int stack_inputs;     ///< Words popped.
  int stack_outputs;    ///< Words pushed.
  uint16_t gas;         ///< Simplified static gas cost.
  uint8_t immediate;    ///< Trailing immediate bytes (PUSHn only).
  bool defined;         ///< False for holes in the opcode space.
};

/// Returns metadata for a raw opcode byte. Undefined opcodes return an entry
/// with defined == false and name "UNDEFINED".
const OpInfo& GetOpInfo(uint8_t opcode);

inline const OpInfo& GetOpInfo(Op op) {
  return GetOpInfo(static_cast<uint8_t>(op));
}

/// True for PUSH1..PUSH32.
inline bool IsPush(uint8_t opcode) { return opcode >= 0x60 && opcode <= 0x7f; }
/// Number of immediate bytes for a PUSH opcode (1..32).
inline int PushSize(uint8_t opcode) { return opcode - 0x5f; }
/// True for DUP1..DUP16.
inline bool IsDup(uint8_t opcode) { return opcode >= 0x80 && opcode <= 0x8f; }
/// DUP depth (1..16).
inline int DupDepth(uint8_t opcode) { return opcode - 0x7f; }
/// True for SWAP1..SWAP16.
inline bool IsSwap(uint8_t opcode) { return opcode >= 0x90 && opcode <= 0x9f; }
/// SWAP depth (1..16).
inline int SwapDepth(uint8_t opcode) { return opcode - 0x8f; }
/// True for LOG0..LOG4.
inline bool IsLog(uint8_t opcode) { return opcode >= 0xa0 && opcode <= 0xa4; }
/// Number of topics for a LOG opcode.
inline int LogTopics(uint8_t opcode) { return opcode - 0xa0; }

/// True for instructions that terminate a basic block.
bool IsBlockTerminator(uint8_t opcode);

/// True for comparison instructions (LT, GT, SLT, SGT, EQ).
inline bool IsComparison(uint8_t opcode) {
  return opcode >= 0x10 && opcode <= 0x14;
}

/// True for instructions reading block state (TIMESTAMP, NUMBER, ...), the
/// trigger set of the block-dependency oracle.
bool IsBlockStateRead(uint8_t opcode);

/// True for "vulnerable instructions" in the sense of MuFuzz §IV-C: opcodes
/// whose presence marks a branch as potentially harboring a bug (CALL with
/// value, DELEGATECALL, SELFDESTRUCT, block-state reads, BALANCE, ORIGIN,
/// and wrapping arithmetic).
bool IsVulnerableInstruction(uint8_t opcode);

/// Renders the mnemonic, e.g. "PUSH4" or "ADD".
std::string OpName(uint8_t opcode);

}  // namespace mufuzz::evm

#endif  // MUFUZZ_EVM_OPCODES_H_
