#include "engine/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "evm/execution_backend.h"
#include "lang/compiler.h"

namespace mufuzz::engine {

namespace {

double MsBetween(std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Runs one job on the calling worker. `backend` may be null (no session
/// reuse) — the campaign then owns a private session.
JobOutcome RunJob(const FuzzJob& job, evm::SessionBackend* backend) {
  JobOutcome outcome;
  outcome.name = job.name;
  auto start = std::chrono::steady_clock::now();

  const lang::ContractArtifact* artifact = job.artifact;
  std::optional<lang::ContractArtifact> compiled;
  if (artifact == nullptr) {
    auto result = lang::CompileContract(job.source);
    if (!result.ok()) {
      outcome.error = result.status().ToString();
      outcome.elapsed_ms =
          MsBetween(start, std::chrono::steady_clock::now());
      return outcome;
    }
    compiled = std::move(result).value();
    artifact = &*compiled;
  }

  outcome.result = fuzzer::RunCampaign(*artifact, job.config, backend);
  outcome.elapsed_ms = MsBetween(start, std::chrono::steady_clock::now());
  return outcome;
}

}  // namespace

int DefaultWorkerCount() {
  if (const char* env = std::getenv("MUFUZZ_WORKERS")) {
    int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ParallelRunner::ParallelRunner(RunnerOptions options)
    : options_(options) {}

std::vector<JobOutcome> ParallelRunner::Run(const std::vector<FuzzJob>& jobs) {
  std::vector<JobOutcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;

  int workers = options_.workers > 0 ? options_.workers
                                     : DefaultWorkerCount();
  workers = std::min<int>(workers, static_cast<int>(jobs.size()));

  std::atomic<size_t> next{0};

  auto worker_fn = [&](int worker_id) {
    // Independent per-worker stream, used only for worker-local choices
    // (session leasing); job randomness comes from each job's config.seed.
    Rng rng(options_.worker_seed +
            0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(worker_id + 1));
    std::unique_ptr<evm::SessionBackend> backend;
    if (options_.reuse_sessions) backend = pool_.Acquire(&rng);

    for (;;) {
      size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= jobs.size()) break;
      outcomes[index] = RunJob(jobs[index], backend.get());
    }
    if (backend != nullptr) pool_.Release(std::move(backend));
  };

  if (workers == 1) {
    worker_fn(0);
    return outcomes;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker_fn, w);
  for (std::thread& t : threads) t.join();
  return outcomes;
}

std::vector<JobOutcome> RunBatch(const std::vector<FuzzJob>& jobs,
                                 RunnerOptions options) {
  return ParallelRunner(options).Run(jobs);
}

}  // namespace mufuzz::engine
