#include "engine/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <thread>
#include <utility>

#include "evm/execution_backend.h"
#include "fuzzer/sharded_seed_scheduler.h"
#include "lang/compiler.h"

namespace mufuzz::engine {

namespace {

double MsBetween(std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Runs one job on the calling worker. `backend` may be null (no session
/// reuse) — the campaign then owns a private session.
JobOutcome RunJob(const FuzzJob& job, evm::SessionBackend* backend) {
  JobOutcome outcome;
  outcome.name = job.name;
  auto start = std::chrono::steady_clock::now();

  const lang::ContractArtifact* artifact = job.artifact;
  std::optional<lang::ContractArtifact> compiled;
  if (artifact == nullptr) {
    auto result = lang::CompileContract(job.source);
    if (!result.ok()) {
      outcome.error = result.status().ToString();
      outcome.elapsed_ms =
          MsBetween(start, std::chrono::steady_clock::now());
      return outcome;
    }
    compiled = std::move(result).value();
    artifact = &*compiled;
  }

  outcome.result = fuzzer::RunCampaign(*artifact, job.config, backend);
  outcome.elapsed_ms = MsBetween(start, std::chrono::steady_clock::now());
  return outcome;
}

/// Fans fn(0..count) across up to `workers` threads pulling from a shared
/// atomic counter, and joins before returning — the barrier the island
/// rounds rely on. Single-worker (or single-item) calls stay on the calling
/// thread.
void ForEachParallel(int workers, size_t count,
                     const std::function<void(size_t)>& fn) {
  workers = std::min<int>(workers, static_cast<int>(count));
  if (workers <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto body = [&] {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int w = 0; w < workers; ++w) threads.emplace_back(body);
  for (std::thread& t : threads) t.join();
}

/// One island of a migration group: one job's campaign plus the scaffolding
/// the round loop needs.
struct IslandState {
  size_t job_index = 0;
  int island_id = -1;
  const lang::ContractArtifact* artifact = nullptr;
  std::optional<lang::ContractArtifact> compiled;  ///< when source-compiled
  fuzzer::SeedScheduler* queue = nullptr;  ///< owned by the group's sharder
  std::unique_ptr<fuzzer::Campaign> campaign;
  double elapsed_ms = 0;  ///< execution time summed across phases/rounds
};

}  // namespace

int DefaultWorkerCount() {
  if (const char* env = std::getenv("MUFUZZ_WORKERS")) {
    char* end = nullptr;
    errno = 0;
    long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && errno != ERANGE && parsed > 0 &&
        parsed <= INT_MAX) {
      return static_cast<int>(parsed);
    }
    static const bool warned = [env] {
      std::fprintf(stderr,
                   "[mufuzz] ignoring MUFUZZ_WORKERS=\"%s\" (not a positive "
                   "integer); using hardware concurrency\n",
                   env);
      return true;
    }();
    (void)warned;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ParallelRunner::ParallelRunner(RunnerOptions options)
    : options_(options) {}

std::vector<JobOutcome> ParallelRunner::Run(const std::vector<FuzzJob>& jobs) {
  std::vector<JobOutcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;

  int workers = options_.workers > 0 ? options_.workers
                                     : DefaultWorkerCount();

  // Partition: island-group members (with migration on) take the stepped
  // path; everything else streams through the classic job queue.
  const bool migration = options_.exchange_interval > 0;
  std::vector<size_t> standalone;
  std::map<int, std::vector<size_t>> groups;  // ordered → deterministic
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (migration && jobs[i].island_group >= 0) {
      groups[jobs[i].island_group].push_back(i);
    } else {
      standalone.push_back(i);
    }
  }

  if (!standalone.empty()) {
    int pool_workers =
        std::min<int>(workers, static_cast<int>(standalone.size()));
    std::atomic<size_t> next{0};

    auto worker_fn = [&](int worker_id) {
      // Independent per-worker stream, used only for worker-local choices
      // (session leasing); job randomness comes from each job's config.seed.
      Rng rng(options_.worker_seed +
              0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(worker_id + 1));
      std::unique_ptr<evm::SessionBackend> backend;
      if (options_.reuse_sessions) backend = pool_.Acquire(&rng);

      for (;;) {
        size_t pos = next.fetch_add(1, std::memory_order_relaxed);
        if (pos >= standalone.size()) break;
        size_t index = standalone[pos];
        outcomes[index] = RunJob(jobs[index], backend.get());
      }
      if (backend != nullptr) pool_.Release(std::move(backend));
    };

    if (pool_workers == 1) {
      worker_fn(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(pool_workers);
      for (int w = 0; w < pool_workers; ++w) threads.emplace_back(worker_fn, w);
      for (std::thread& t : threads) t.join();
    }
  }

  if (!groups.empty()) RunIslandGroups(jobs, groups, workers, &outcomes);
  return outcomes;
}

void ParallelRunner::RunIslandGroups(
    const std::vector<FuzzJob>& jobs,
    const std::map<int, std::vector<size_t>>& groups, int workers,
    std::vector<JobOutcome>* outcomes) {
  using Clock = std::chrono::steady_clock;

  std::vector<IslandState> islands;
  for (const auto& [group_id, indices] : groups) {
    for (size_t index : indices) {
      IslandState state;
      state.job_index = index;
      islands.push_back(std::move(state));
    }
  }

  // Phase A (parallel): compile. A failed compile becomes the usual skip
  // marker and the island drops out of its group before ids are assigned.
  ForEachParallel(workers, islands.size(), [&](size_t i) {
    auto start = Clock::now();
    IslandState& state = islands[i];
    const FuzzJob& job = jobs[state.job_index];
    (*outcomes)[state.job_index].name = job.name;
    if (job.artifact != nullptr) {
      state.artifact = job.artifact;
    } else {
      auto result = lang::CompileContract(job.source);
      if (result.ok()) {
        state.compiled = std::move(result).value();
        state.artifact = &*state.compiled;
      } else {
        (*outcomes)[state.job_index].error = result.status().ToString();
      }
    }
    state.elapsed_ms += MsBetween(start, Clock::now());
    if (state.artifact == nullptr) {
      (*outcomes)[state.job_index].elapsed_ms = state.elapsed_ms;
    }
  });

  // Serial: build one ShardedSeedScheduler per group over the islands that
  // compiled, assigning island ids in job order (what keeps migration
  // independent of which worker runs what).
  struct GroupRun {
    std::unique_ptr<fuzzer::ShardedSeedScheduler> sharder;
  };
  std::vector<GroupRun> group_runs;
  {
    size_t cursor = 0;
    for (const auto& [group_id, indices] : groups) {
      std::vector<std::unique_ptr<fuzzer::SeedScheduler>> queues;
      std::vector<IslandState*> members;
      for (size_t k = 0; k < indices.size(); ++k, ++cursor) {
        IslandState& state = islands[cursor];
        if (state.artifact == nullptr) continue;  // compile failed
        state.island_id = static_cast<int>(members.size());
        queues.push_back(std::make_unique<fuzzer::SeedScheduler>(
            jobs[state.job_index].config.strategy.distance_feedback));
        state.queue = queues.back().get();
        members.push_back(&state);
      }
      GroupRun run;
      run.sharder =
          std::make_unique<fuzzer::ShardedSeedScheduler>(std::move(queues));
      group_runs.push_back(std::move(run));
    }
  }

  std::vector<IslandState*> live;
  for (IslandState& state : islands) {
    if (state.artifact != nullptr) live.push_back(&state);
  }

  // Phase B (parallel): deploy + initial corpus. Each campaign owns a
  // private backend — it must survive across rounds, so pooled leasing
  // would pin the session anyway.
  ForEachParallel(workers, live.size(), [&](size_t i) {
    auto start = Clock::now();
    IslandState& state = *live[i];
    state.campaign = std::make_unique<fuzzer::Campaign>(
        state.artifact, jobs[state.job_index].config, nullptr, state.queue,
        state.island_id);
    state.campaign->SeedCorpus();
    state.elapsed_ms += MsBetween(start, Clock::now());
  });

  // Round loop: step every unfinished island for exchange_interval
  // executions (parallel), then — behind the join barrier — run one serial
  // migration per group. Finished islands stop executing but keep
  // exporting/importing, so the exchange schedule is a pure function of the
  // job list.
  const uint64_t interval =
      static_cast<uint64_t>(std::max(1, options_.exchange_interval));
  for (;;) {
    std::vector<IslandState*> active;
    for (IslandState* state : live) {
      if (!state->campaign->Done()) active.push_back(state);
    }
    if (active.empty()) break;
    ForEachParallel(workers, active.size(), [&](size_t i) {
      auto start = Clock::now();
      active[i]->campaign->StepRound(interval);
      active[i]->elapsed_ms += MsBetween(start, Clock::now());
    });
    for (GroupRun& run : group_runs) {
      run.sharder->RunMigrationRound(options_.migration_top_k);
    }
  }

  // Phase C (parallel): finalize into the job-indexed outcome slots, then
  // drop each campaign before its externally owned queue goes away.
  ForEachParallel(workers, live.size(), [&](size_t i) {
    auto start = Clock::now();
    IslandState& state = *live[i];
    (*outcomes)[state.job_index].result = state.campaign->Finalize();
    state.campaign.reset();
    state.elapsed_ms += MsBetween(start, Clock::now());
    (*outcomes)[state.job_index].elapsed_ms = state.elapsed_ms;
  });
}

std::vector<JobOutcome> RunBatch(const std::vector<FuzzJob>& jobs,
                                 RunnerOptions options) {
  return ParallelRunner(options).Run(jobs);
}

}  // namespace mufuzz::engine
