#include "engine/parallel_runner.h"

#include <map>
#include <utility>

namespace mufuzz::engine {

ParallelRunner::ParallelRunner(RunnerOptions options) : options_(options) {}

FuzzService* ParallelRunner::EnsureService() {
  if (service_ == nullptr) {
    ServiceOptions service_options;
    service_options.workers = options_.workers;
    service_options.reuse_sessions = options_.reuse_sessions;
    service_options.worker_seed = options_.worker_seed;
    service_options.wave_size = options_.wave_size;
    service_options.fanout = options_.fanout;
    service_options.backend_workers = options_.backend_workers;
    service_options.exchange_interval = options_.exchange_interval;
    service_options.migration_top_k = options_.migration_top_k;
    service_ = std::make_unique<FuzzService>(service_options);
  }
  return service_.get();
}

std::vector<JobOutcome> ParallelRunner::Run(const std::vector<FuzzJob>& jobs) {
  std::vector<JobOutcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;
  FuzzService* service = EnsureService();

  // Partition exactly as the pre-service batch runner did: island-group
  // members take the migration path only when migration is on; everything
  // else (including group tags with migration off) runs standalone.
  const bool migration = options_.exchange_interval > 0;
  std::vector<size_t> standalone;
  std::map<int, std::vector<size_t>> groups;  // ordered → deterministic
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (migration && jobs[i].island_group >= 0) {
      groups[jobs[i].island_group].push_back(i);
    } else {
      standalone.push_back(i);
    }
  }

  // Submit everything, then wait: the service interleaves the standalone
  // stream and the island rounds on its pool. Validation failures become
  // error outcomes in the failed job's slot (all-or-nothing per group).
  std::vector<std::pair<size_t, JobTicket>> waits;
  waits.reserve(jobs.size());
  for (size_t index : standalone) {
    Result<JobTicket> ticket = service->Submit(jobs[index]);
    if (ticket.ok()) {
      waits.emplace_back(index, ticket.value());
    } else {
      outcomes[index].name = jobs[index].name;
      outcomes[index].error = ticket.status().ToString();
    }
  }
  for (const auto& [group_id, indices] : groups) {
    std::vector<FuzzJob> members;
    members.reserve(indices.size());
    for (size_t index : indices) members.push_back(jobs[index]);
    Result<GroupTicket> group = service->SubmitIslandGroup(std::move(members));
    if (group.ok()) {
      for (size_t k = 0; k < indices.size(); ++k) {
        waits.emplace_back(indices[k], group.value().members[k]);
      }
    } else {
      for (size_t index : indices) {
        outcomes[index].name = jobs[index].name;
        outcomes[index].error = group.status().ToString();
      }
    }
  }

  for (const auto& [index, ticket] : waits) {
    outcomes[index] = service->Wait(ticket);
  }
  return outcomes;
}

std::vector<JobOutcome> RunBatch(const std::vector<FuzzJob>& jobs,
                                 RunnerOptions options) {
  return ParallelRunner(options).Run(jobs);
}

}  // namespace mufuzz::engine
