#include "engine/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <thread>
#include <utility>

#include "evm/async_backend.h"
#include "evm/execution_backend.h"
#include "fuzzer/sharded_seed_scheduler.h"
#include "lang/compiler.h"

namespace mufuzz::engine {

namespace {

double MsBetween(std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Runs one job on the calling worker. `backend` may be null (no session
/// reuse) — the campaign then owns a private backend.
JobOutcome RunJob(const FuzzJob& job, const fuzzer::CampaignConfig& config,
                  evm::ExecutionBackend* backend) {
  JobOutcome outcome;
  outcome.name = job.name;
  auto start = std::chrono::steady_clock::now();

  const lang::ContractArtifact* artifact = job.artifact;
  std::optional<lang::ContractArtifact> compiled;
  if (artifact == nullptr) {
    auto result = lang::CompileContract(job.source);
    if (!result.ok()) {
      outcome.error = result.status().ToString();
      outcome.elapsed_ms =
          MsBetween(start, std::chrono::steady_clock::now());
      return outcome;
    }
    compiled = std::move(result).value();
    artifact = &*compiled;
  }

  outcome.result = fuzzer::RunCampaign(*artifact, config, backend);
  outcome.elapsed_ms = MsBetween(start, std::chrono::steady_clock::now());
  return outcome;
}

/// One island of a migration group: one job's campaign plus the scaffolding
/// the round loop needs.
struct IslandState {
  size_t job_index = 0;
  int island_id = -1;
  const lang::ContractArtifact* artifact = nullptr;
  std::optional<lang::ContractArtifact> compiled;  ///< when source-compiled
  fuzzer::SeedScheduler* queue = nullptr;  ///< owned by the group's sharder
  std::unique_ptr<fuzzer::Campaign> campaign;
  double elapsed_ms = 0;  ///< execution time summed across phases/rounds
};

}  // namespace

int DefaultWorkerCount() {
  if (const char* env = std::getenv("MUFUZZ_WORKERS")) {
    char* end = nullptr;
    errno = 0;
    long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && errno != ERANGE && parsed > 0 &&
        parsed <= INT_MAX) {
      return static_cast<int>(parsed);
    }
    static const bool warned = [env] {
      std::fprintf(stderr,
                   "[mufuzz] ignoring MUFUZZ_WORKERS=\"%s\" (not a positive "
                   "integer); using hardware concurrency\n",
                   env);
      return true;
    }();
    (void)warned;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ParallelRunner::ParallelRunner(RunnerOptions options)
    : options_(options) {}

WorkerPool* ParallelRunner::EnsurePool(int workers) {
  if (round_pool_ == nullptr || round_pool_->size() < workers) {
    round_pool_ = std::make_unique<WorkerPool>(workers);
  }
  return round_pool_.get();
}

fuzzer::CampaignConfig ParallelRunner::EffectiveConfig(
    const FuzzJob& job) const {
  fuzzer::CampaignConfig config = job.config;
  if (options_.wave_size > 0) config.wave_size = options_.wave_size;
  return config;
}

std::vector<JobOutcome> ParallelRunner::Run(const std::vector<FuzzJob>& jobs) {
  std::vector<JobOutcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;

  int workers = options_.workers > 0 ? options_.workers
                                     : DefaultWorkerCount();
  WorkerPool* pool = EnsurePool(workers);

  // Partition: island-group members (with migration on) take the stepped
  // path; everything else streams through the classic job queue.
  const bool migration = options_.exchange_interval > 0;
  std::vector<size_t> standalone;
  std::map<int, std::vector<size_t>> groups;  // ordered → deterministic
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (migration && jobs[i].island_group >= 0) {
      groups[jobs[i].island_group].push_back(i);
    } else {
      standalone.push_back(i);
    }
  }

  if (!standalone.empty()) {
    int pool_workers =
        std::min<int>(workers, static_cast<int>(standalone.size()));
    std::atomic<size_t> next{0};

    // Each index of this ParallelEach is one worker *stream*, not one job:
    // the stream leases its execution backend once and drains the shared
    // job queue with it, exactly as the former spawn/join workers did.
    pool->ParallelEach(
        static_cast<size_t>(pool_workers), [&](size_t worker_id) {
          // Independent per-worker stream, used only for worker-local
          // choices (session leasing); job randomness comes from each job's
          // config.seed.
          Rng rng(options_.worker_seed +
                  0x9e3779b97f4a7c15ULL *
                      static_cast<uint64_t>(worker_id + 1));
          std::unique_ptr<evm::SessionBackend> session;
          std::unique_ptr<evm::AsyncBackendAdapter> adapter;
          evm::ExecutionBackend* backend = nullptr;
          if (options_.backend_workers > 0) {
            evm::AsyncBackendAdapter::Options adapter_options;
            adapter_options.workers = options_.backend_workers;
            adapter = std::make_unique<evm::AsyncBackendAdapter>(
                adapter_options,
                options_.reuse_sessions ? &pool_ : nullptr);
            backend = adapter.get();
          } else if (options_.reuse_sessions) {
            session = pool_.Acquire(&rng);
            backend = session.get();
          }

          for (;;) {
            size_t pos = next.fetch_add(1, std::memory_order_relaxed);
            if (pos >= standalone.size()) break;
            size_t index = standalone[pos];
            outcomes[index] = RunJob(jobs[index],
                                     EffectiveConfig(jobs[index]), backend);
          }
          if (session != nullptr) pool_.Release(std::move(session));
          // An adapter releases its worker sessions on destruction.
        });
  }

  if (!groups.empty()) RunIslandGroups(jobs, groups, workers, &outcomes);
  return outcomes;
}

void ParallelRunner::RunIslandGroups(
    const std::vector<FuzzJob>& jobs,
    const std::map<int, std::vector<size_t>>& groups, int workers,
    std::vector<JobOutcome>* outcomes) {
  using Clock = std::chrono::steady_clock;
  WorkerPool* pool = EnsurePool(workers);

  std::vector<IslandState> islands;
  for (const auto& [group_id, indices] : groups) {
    for (size_t index : indices) {
      IslandState state;
      state.job_index = index;
      islands.push_back(std::move(state));
    }
  }

  // Phase A (parallel): compile. A failed compile becomes the usual skip
  // marker and the island drops out of its group before ids are assigned.
  pool->ParallelEach(islands.size(), [&](size_t i) {
    auto start = Clock::now();
    IslandState& state = islands[i];
    const FuzzJob& job = jobs[state.job_index];
    (*outcomes)[state.job_index].name = job.name;
    if (job.artifact != nullptr) {
      state.artifact = job.artifact;
    } else {
      auto result = lang::CompileContract(job.source);
      if (result.ok()) {
        state.compiled = std::move(result).value();
        state.artifact = &*state.compiled;
      } else {
        (*outcomes)[state.job_index].error = result.status().ToString();
      }
    }
    state.elapsed_ms += MsBetween(start, Clock::now());
    if (state.artifact == nullptr) {
      (*outcomes)[state.job_index].elapsed_ms = state.elapsed_ms;
    }
  });

  // Serial: build one ShardedSeedScheduler per group over the islands that
  // compiled, assigning island ids in job order (what keeps migration
  // independent of which worker runs what).
  struct GroupRun {
    std::unique_ptr<fuzzer::ShardedSeedScheduler> sharder;
  };
  std::vector<GroupRun> group_runs;
  {
    size_t cursor = 0;
    for (const auto& [group_id, indices] : groups) {
      std::vector<std::unique_ptr<fuzzer::SeedScheduler>> queues;
      std::vector<IslandState*> members;
      for (size_t k = 0; k < indices.size(); ++k, ++cursor) {
        IslandState& state = islands[cursor];
        if (state.artifact == nullptr) continue;  // compile failed
        state.island_id = static_cast<int>(members.size());
        queues.push_back(std::make_unique<fuzzer::SeedScheduler>(
            jobs[state.job_index].config.strategy.distance_feedback));
        state.queue = queues.back().get();
        members.push_back(&state);
      }
      GroupRun run;
      run.sharder =
          std::make_unique<fuzzer::ShardedSeedScheduler>(std::move(queues));
      group_runs.push_back(std::move(run));
    }
  }

  std::vector<IslandState*> live;
  for (IslandState& state : islands) {
    if (state.artifact != nullptr) live.push_back(&state);
  }

  // Phase B (parallel): deploy + initial corpus. Each campaign owns a
  // private backend — it must survive across rounds, so pooled leasing
  // would pin the session anyway. In pipelined mode the private backend is
  // an AsyncBackendAdapter (config.async_workers, set here from the runner
  // options): islands and backend workers compose.
  pool->ParallelEach(live.size(), [&](size_t i) {
    auto start = Clock::now();
    IslandState& state = *live[i];
    fuzzer::CampaignConfig config = EffectiveConfig(jobs[state.job_index]);
    if (options_.backend_workers > 0) {
      config.async_workers = options_.backend_workers;
    }
    state.campaign = std::make_unique<fuzzer::Campaign>(
        state.artifact, config, nullptr, state.queue, state.island_id);
    state.campaign->SeedCorpus();
    state.elapsed_ms += MsBetween(start, Clock::now());
  });

  // Round loop: step every unfinished island for exchange_interval
  // executions (parallel over the persistent pool), then — behind the
  // fork-join barrier — run one serial migration per group. Finished
  // islands stop executing but keep exporting/importing, so the exchange
  // schedule is a pure function of the job list.
  const uint64_t interval =
      static_cast<uint64_t>(std::max(1, options_.exchange_interval));
  for (;;) {
    std::vector<IslandState*> active;
    for (IslandState* state : live) {
      if (!state->campaign->Done()) active.push_back(state);
    }
    if (active.empty()) break;
    pool->ParallelEach(active.size(), [&](size_t i) {
      auto start = Clock::now();
      active[i]->campaign->StepRound(interval);
      active[i]->elapsed_ms += MsBetween(start, Clock::now());
    });
    for (GroupRun& run : group_runs) {
      run.sharder->RunMigrationRound(options_.migration_top_k);
    }
  }

  // Phase C (parallel): finalize into the job-indexed outcome slots, then
  // drop each campaign before its externally owned queue goes away.
  pool->ParallelEach(live.size(), [&](size_t i) {
    auto start = Clock::now();
    IslandState& state = *live[i];
    (*outcomes)[state.job_index].result = state.campaign->Finalize();
    state.campaign.reset();
    state.elapsed_ms += MsBetween(start, Clock::now());
    (*outcomes)[state.job_index].elapsed_ms = state.elapsed_ms;
  });
}

std::vector<JobOutcome> RunBatch(const std::vector<FuzzJob>& jobs,
                                 RunnerOptions options) {
  return ParallelRunner(options).Run(jobs);
}

}  // namespace mufuzz::engine
