#ifndef MUFUZZ_ENGINE_PARALLEL_RUNNER_H_
#define MUFUZZ_ENGINE_PARALLEL_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/worker_pool.h"
#include "evm/execution_backend.h"
#include "fuzzer/campaign.h"
#include "lang/codegen.h"

namespace mufuzz::engine {

/// One unit of batch work: fuzz one contract with one (strategy, seed)
/// configuration. Either `artifact` is set (pre-compiled, caller keeps
/// ownership and must outlive the batch) or `source` is compiled by the
/// worker that picks the job up — which parallelizes compilation too.
struct FuzzJob {
  std::string name;    ///< label carried through to the outcome
  std::string source;  ///< compiled when `artifact` is null
  const lang::ContractArtifact* artifact = nullptr;
  fuzzer::CampaignConfig config;
  /// Jobs sharing a non-negative group id form an island archipelago: when
  /// `RunnerOptions::exchange_interval` > 0 their campaigns run in lockstep
  /// rounds and exchange top seeds between rounds (see ShardedSeedScheduler).
  /// Group members should fuzz the same contract — migrated sequences index
  /// into the destination's ABI. -1 (default) = standalone job.
  int island_group = -1;
};

/// What came back for one job. `result` is empty exactly when compilation
/// failed — a failed job can never be mistaken for a zero-coverage row.
struct JobOutcome {
  std::string name;
  std::optional<fuzzer::CampaignResult> result;
  std::string error;      ///< compile diagnostics when `result` is empty
  double elapsed_ms = 0;  ///< wall-clock for this job on its worker
};

struct RunnerOptions {
  /// Worker threads; <= 0 means DefaultWorkerCount().
  int workers = 0;
  /// Lease execution sessions from a shared pool and reuse them across the
  /// worker's job stream instead of allocating per campaign.
  bool reuse_sessions = true;
  /// Base for the per-worker Rng streams. Worker-local randomness (e.g.
  /// which pooled session to lease) never influences job results — those
  /// are fully determined by each job's own config.seed.
  uint64_t worker_seed = 0x5eed;
  /// Sequence executions each island runs between migration rounds for jobs
  /// with a non-negative `island_group`. 0 (default) disables migration —
  /// grouped jobs then run as standalone.
  int exchange_interval = 0;
  /// Seeds each island exports per migration round.
  int migration_top_k = 2;

  // ------------------------------------------------------- Wave pipeline --
  /// > 0 overrides every job's CampaignConfig::wave_size — the pipelined
  /// mode's wave width W. Campaign results depend on W (documented wave
  /// semantics) but never on worker counts.
  int wave_size = 0;
  /// > 0 runs every campaign over an AsyncBackendAdapter with this many
  /// execution workers: standalone jobs get a per-runner-worker adapter
  /// leasing sessions from the shared pool; island campaigns own private
  /// adapters (their sessions must survive across rounds). Composes with
  /// islands: N islands × M backend workers.
  int backend_workers = 0;
};

/// Worker threads to use by default: $MUFUZZ_WORKERS when set to a positive
/// integer, otherwise the hardware concurrency (min 1). A malformed value
/// (non-numeric, trailing garbage, zero/negative, out of range) is reported
/// once on stderr and ignored instead of silently falling through.
int DefaultWorkerCount();

/// Fans a batch of jobs across a persistent WorkerPool. Jobs are handed
/// out in index order from a shared queue; each outcome is written to the
/// slot matching its job index, so the merged result vector is deterministic
/// and independent of scheduling, worker count, and completion order. Every
/// campaign derives all randomness from its job's seed, which makes the
/// batch bit-for-bit reproducible: N workers produce exactly what one
/// worker — or a plain serial loop over RunCampaign — produces.
///
/// Island mode: jobs with a non-negative `island_group` (and
/// `exchange_interval` > 0) run as a sharded corpus instead — each job is
/// one island with a private seed queue, stepped in barrier-synchronized
/// rounds of `exchange_interval` executions. Between rounds the coordinator
/// thread runs one deterministic migration per group (top-k exports merged
/// in (island id, rank) order; island ids come from job order, never thread
/// ids), so island results are also bit-for-bit worker-count independent.
/// Rounds run on the same persistent pool (std::barrier fork-join) instead
/// of spawning and joining threads per round.
///
/// Pipelined mode (`wave_size` / `backend_workers`): campaigns run the
/// staged wave loop over async backends; see RunnerOptions.
class ParallelRunner {
 public:
  explicit ParallelRunner(RunnerOptions options = RunnerOptions());

  std::vector<JobOutcome> Run(const std::vector<FuzzJob>& jobs);

  /// Backends created so far (pool diagnostics; at most `workers` per Run,
  /// fewer when a runner is kept across batches and sessions recycle).
  size_t sessions_created() const { return pool_.created(); }

 private:
  /// The persistent fork-join pool, created on first use with the resolved
  /// worker count and kept across batches.
  WorkerPool* EnsurePool(int workers);

  /// Job config with the runner's pipeline overrides applied.
  fuzzer::CampaignConfig EffectiveConfig(const FuzzJob& job) const;

  /// Drives the island-mode jobs: per-group ShardedSeedScheduler, parallel
  /// construction, barrier rounds with serial migration, parallel finalize.
  /// `groups` maps group id → member job indices in job order.
  void RunIslandGroups(const std::vector<FuzzJob>& jobs,
                       const std::map<int, std::vector<size_t>>& groups,
                       int workers, std::vector<JobOutcome>* outcomes);

  RunnerOptions options_;
  /// Lives as long as the runner: keeping one runner across batches lets
  /// workers lease already-constructed backends instead of allocating.
  evm::SessionPool pool_;
  std::unique_ptr<WorkerPool> round_pool_;
};

/// One-call convenience over ParallelRunner.
std::vector<JobOutcome> RunBatch(const std::vector<FuzzJob>& jobs,
                                 RunnerOptions options = RunnerOptions());

}  // namespace mufuzz::engine

#endif  // MUFUZZ_ENGINE_PARALLEL_RUNNER_H_
