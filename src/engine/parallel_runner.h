#ifndef MUFUZZ_ENGINE_PARALLEL_RUNNER_H_
#define MUFUZZ_ENGINE_PARALLEL_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "engine/fuzz_service.h"

namespace mufuzz::engine {

/// Batch-mode knobs — the ServiceOptions subset the pre-service runner
/// exposed, kept field-for-field so call sites port mechanically.
struct RunnerOptions {
  /// Worker threads; <= 0 means DefaultWorkerCount().
  int workers = 0;
  /// Lease execution sessions from a shared pool and reuse them across
  /// jobs instead of allocating per campaign.
  bool reuse_sessions = true;
  /// Base for worker-local Rng streams. Worker-local randomness never
  /// influences job results — those are fully determined by each job's own
  /// config.seed.
  uint64_t worker_seed = 0x5eed;
  /// Sequence executions each island runs between migration rounds for jobs
  /// with a non-negative `island_group`. 0 (default) disables migration —
  /// grouped jobs then run as standalone.
  int exchange_interval = 0;
  /// Seeds each island exports per migration round.
  int migration_top_k = 2;

  // ------------------------------------------------------- Wave pipeline --
  /// > 0 overrides every job's CampaignConfig::wave_size — the pipelined
  /// mode's wave width W. Campaign results depend on W (documented wave
  /// semantics) but never on worker counts.
  int wave_size = 0;
  /// > 0 overrides every job's CampaignConfig::fanout — the speculative
  /// multi-parent expansion width K. Like W, K is part of each job's
  /// reproducibility key; worker counts still never influence results.
  int fanout = 0;
  /// > 0 runs every campaign over async execution workers — one shared
  /// AsyncExecutionHub with this many threads serves the whole batch (see
  /// ServiceOptions::share_backend).
  int backend_workers = 0;
};

/// Batch compatibility shim over FuzzService: Run() submits every job
/// (island groups via SubmitIslandGroup when `exchange_interval` > 0,
/// everything else standalone), waits for all of them, and returns the
/// outcomes in job order. All streaming semantics — interleaved standalone
/// and island rounds on one pool, shared execution hub, per-job validation
/// — come from the service; the batch call adds nothing but the blocking
/// convenience.
///
/// Determinism: each outcome is exactly what the same job produces when
/// streamed into a live service (or, for standalone jobs, what a plain
/// serial RunCampaign produces) — bit-for-bit, at any worker count. A job
/// that fails validation (see FuzzService::Submit) gets an error outcome
/// instead of being silently coerced; island groups are all-or-nothing per
/// group.
///
/// The service (its worker pool, session pool, and execution hub) persists
/// across Run() calls, so keeping one runner alive amortizes sessions over
/// many batches.
class ParallelRunner {
 public:
  explicit ParallelRunner(RunnerOptions options = RunnerOptions());

  std::vector<JobOutcome> Run(const std::vector<FuzzJob>& jobs);

  /// Backends created so far (pool diagnostics; fewer than jobs when a
  /// runner is kept across batches and sessions recycle).
  size_t sessions_created() const {
    return service_ != nullptr ? service_->sessions_created() : 0;
  }

  /// The underlying service (constructed on first Run), for callers that
  /// want to mix batch and streaming use.
  FuzzService* service() { return service_.get(); }

 private:
  FuzzService* EnsureService();

  RunnerOptions options_;
  std::unique_ptr<FuzzService> service_;
};

/// One-call convenience over ParallelRunner.
std::vector<JobOutcome> RunBatch(const std::vector<FuzzJob>& jobs,
                                 RunnerOptions options = RunnerOptions());

}  // namespace mufuzz::engine

#endif  // MUFUZZ_ENGINE_PARALLEL_RUNNER_H_
