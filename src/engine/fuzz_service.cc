#include "engine/fuzz_service.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "lang/compiler.h"

namespace mufuzz::engine {

namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int DefaultWorkerCount() {
  if (const char* env = std::getenv("MUFUZZ_WORKERS")) {
    char* end = nullptr;
    errno = 0;
    long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && errno != ERANGE && parsed > 0 &&
        parsed <= INT_MAX) {
      return static_cast<int>(parsed);
    }
    static const bool warned = [env] {
      std::fprintf(stderr,
                   "[mufuzz] ignoring MUFUZZ_WORKERS=\"%s\" (not a positive "
                   "integer); using hardware concurrency\n",
                   env);
      return true;
    }();
    (void)warned;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

FuzzService::FuzzService(ServiceOptions options) : options_(options) {
  workers_ = options_.workers > 0 ? options_.workers : DefaultWorkerCount();
  options_.round_quantum = std::max(1, options_.round_quantum);
  if (options_.backend_workers > 0 && options_.share_backend) {
    evm::AsyncExecutionHub::Options hub_options;
    hub_options.workers = options_.backend_workers;
    hub_ = std::make_unique<evm::AsyncExecutionHub>(
        hub_options, options_.reuse_sessions ? &session_pool_ : nullptr);
  }
  pool_ = std::make_unique<WorkerPool>(workers_);
  coordinator_ = std::thread([this] { CoordinatorMain(); });
}

FuzzService::~FuzzService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    for (auto& [ticket, record] : live_jobs_) {
      record->cancel_requested = true;
    }
  }
  work_cv_.notify_all();
  if (coordinator_.joinable()) coordinator_.join();
  // Members are destroyed in reverse declaration order: job records (and
  // their hub-bound adapters) before hub_, which the hub's destructor
  // requires.
}

// ------------------------------------------------------------- Validation --

Status FuzzService::ValidateSubmission(const FuzzJob& job) const {
  if (options_.wave_size < 0) {
    return Status::InvalidArgument(
        "ServiceOptions::wave_size must be >= 0 (0 = no override)");
  }
  if (options_.backend_workers < 0) {
    return Status::InvalidArgument(
        "ServiceOptions::backend_workers must be >= 0 (0 = in-process "
        "execution)");
  }
  if (options_.migration_top_k < 0) {
    return Status::InvalidArgument(
        "ServiceOptions::migration_top_k must be >= 0 (0 = migrate "
        "nothing)");
  }
  if (options_.fanout < 0) {
    return Status::InvalidArgument(
        "ServiceOptions::fanout must be >= 0 (0 = no override)");
  }
  if (job.config.wave_size < 0) {
    return Status::InvalidArgument("job \"" + job.name +
                                   "\": CampaignConfig::wave_size must be "
                                   ">= 0 (0/1 = the serial loop)");
  }
  if (job.config.fanout < 0) {
    return Status::InvalidArgument("job \"" + job.name +
                                   "\": CampaignConfig::fanout must be >= 0 "
                                   "(0/1 = the serial parent chain)");
  }
  if (job.config.async_workers < 0) {
    return Status::InvalidArgument("job \"" + job.name +
                                   "\": CampaignConfig::async_workers must "
                                   "be >= 0 (0 = in-process execution)");
  }
  if (job.config.max_executions < 0) {
    return Status::InvalidArgument(
        "job \"" + job.name +
        "\": CampaignConfig::max_executions must be >= 0");
  }
  return Status::OK();
}

fuzzer::CampaignConfig FuzzService::EffectiveConfig(const FuzzJob& job) const {
  fuzzer::CampaignConfig config = job.config;
  if (options_.wave_size > 0) config.wave_size = options_.wave_size;
  if (options_.fanout > 0) config.fanout = options_.fanout;
  if (options_.backend_workers > 0) {
    // Shared hub: the campaign gets an external hub-bound adapter, so its
    // own async_workers knob must not spin up a second backend. Private
    // mode: the campaign owns an adapter with the requested width.
    config.async_workers = hub_ != nullptr ? 0 : options_.backend_workers;
  }
  return config;
}

// -------------------------------------------------------------- Admission --

Result<JobTicket> FuzzService::Submit(FuzzJob job) {
  Status status = ValidateSubmission(job);
  if (!status.ok()) return status;
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return Status::Internal("FuzzService is shutting down");
  JobTicket ticket = next_ticket_++;
  auto record = std::make_unique<JobRecord>();
  record->ticket = ticket;
  record->job = std::move(job);
  record->config = EffectiveConfig(record->job);
  record->outcome.name = record->job.name;
  record->progress.state = JobState::kQueued;
  record->progress.fanout = std::max(1, record->config.fanout);
  live_jobs_.emplace(ticket, record.get());
  jobs_.emplace(ticket, std::move(record));
  work_cv_.notify_all();
  return ticket;
}

Result<GroupTicket> FuzzService::SubmitIslandGroup(std::vector<FuzzJob> jobs) {
  if (jobs.empty()) {
    return Status::InvalidArgument(
        "island group must have at least one member");
  }
  if (options_.exchange_interval <= 0) {
    return Status::InvalidArgument(
        "island groups require ServiceOptions::exchange_interval > 0 "
        "(submit the jobs individually to run them standalone)");
  }
  for (const FuzzJob& job : jobs) {
    Status status = ValidateSubmission(job);
    if (!status.ok()) return status;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return Status::Internal("FuzzService is shutting down");
  auto group = std::make_unique<GroupRecord>();
  GroupTicket group_ticket;
  for (FuzzJob& job : jobs) {
    JobTicket ticket = next_ticket_++;
    auto record = std::make_unique<JobRecord>();
    record->ticket = ticket;
    record->job = std::move(job);
    record->config = EffectiveConfig(record->job);
    record->outcome.name = record->job.name;
    record->progress.state = JobState::kQueued;
    record->progress.fanout = std::max(1, record->config.fanout);
    record->group = group.get();
    group->members.push_back(record.get());
    group_ticket.members.push_back(ticket);
    live_jobs_.emplace(ticket, record.get());
    jobs_.emplace(ticket, std::move(record));
  }
  group->open_members = static_cast<int>(group->members.size());
  live_groups_.push_back(group.get());
  groups_.push_back(std::move(group));
  work_cv_.notify_all();
  return group_ticket;
}

// ----------------------------------------------------------- Client calls --

JobProgress FuzzService::Poll(JobTicket ticket) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(ticket);
  if (it == jobs_.end()) return JobProgress();  // state == kUnknown
  const JobRecord* record = it->second.get();
  JobProgress progress = record->progress;
  if (record->stage == Stage::kDone) {
    progress.state = JobState::kDone;
  } else if (record->cancel_requested) {
    progress.state = JobState::kCancelling;
  } else if (record->stage == Stage::kActive ||
             record->stage == Stage::kFinalizing) {
    progress.state = JobState::kRunning;
  } else {
    progress.state = JobState::kQueued;
  }
  return progress;
}

JobOutcome FuzzService::Wait(JobTicket ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(ticket);
  if (it == jobs_.end()) {
    JobOutcome outcome;
    outcome.error = "unknown FuzzService ticket";
    return outcome;
  }
  JobRecord* record = it->second.get();
  done_cv_.wait(lock, [record] { return record->stage == Stage::kDone; });
  return record->outcome;
}

std::vector<JobOutcome> FuzzService::WaitAll() {
  std::vector<JobTicket> tickets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tickets.reserve(jobs_.size());
    for (const auto& [ticket, record] : jobs_) tickets.push_back(ticket);
  }
  std::vector<JobOutcome> outcomes;
  outcomes.reserve(tickets.size());
  for (JobTicket ticket : tickets) outcomes.push_back(Wait(ticket));
  return outcomes;
}

void FuzzService::Cancel(JobTicket ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(ticket);
  if (it == jobs_.end() || it->second->stage == Stage::kDone) return;
  it->second->cancel_requested = true;
  work_cv_.notify_all();
}

void FuzzService::CancelGroup(const GroupTicket& group) {
  for (JobTicket ticket : group.members) Cancel(ticket);
}

// ------------------------------------------------------------ Coordinator --

bool FuzzService::AllDoneLocked() const { return live_jobs_.empty(); }

void FuzzService::CoordinatorMain() {
  for (;;) {
    RoundPlan plan;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !AllDoneLocked(); });
      if (stop_ && AllDoneLocked()) return;
      PlanRoundLocked(&plan);
    }
    if (!plan.tasks.empty()) {
      pool_->ParallelEach(plan.tasks.size(),
                          [&](size_t i) { plan.tasks[i](); });
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      SettleRoundLocked(plan);
    }
  }
}

void FuzzService::PlanRoundLocked(RoundPlan* plan) {
  const uint64_t quantum = static_cast<uint64_t>(options_.round_quantum);
  const uint64_t interval =
      static_cast<uint64_t>(std::max(1, options_.exchange_interval));

  // Iterate with an explicit iterator: a cancel-before-start completes the
  // job inline, which erases its live_jobs_ node — advance first.
  for (auto it = live_jobs_.begin(); it != live_jobs_.end();) {
    JobRecord* r = it->second;
    ++it;
    switch (r->stage) {
      case Stage::kAdmitted:
        if (r->cancel_requested) {
          CancelBeforeStartLocked(r);
          break;
        }
        if (r->group == nullptr) {
          plan->setups.push_back(r);
          plan->tasks.push_back([this, r] { SetupStandalone(r); });
        } else {
          plan->compiles.push_back(r);
          plan->tasks.push_back([this, r] { CompileIslandMember(r); });
        }
        break;
      case Stage::kCompiled:
        // Waiting for every group member to compile; the settle phase
        // builds the sharder and promotes the whole group together. A
        // cancel here lands before any campaign ran: the member drops out
        // of the group exactly like a compile failure.
        if (r->cancel_requested) CancelBeforeStartLocked(r);
        break;
      case Stage::kConstruct:
        if (r->cancel_requested) {
          // Island id and queue are already assigned, but no campaign ever
          // ran — the member's (empty) queue simply stays in the
          // archipelago, exporting nothing.
          CancelBeforeStartLocked(r);
          break;
        }
        plan->setups.push_back(r);
        plan->tasks.push_back([this, r] { ConstructIslandMember(r); });
        break;
      case Stage::kActive:
        if (r->group == nullptr) {
          if (r->cancel_requested || r->campaign->StreamDone()) {
            r->finalize_cancelled =
                r->cancel_requested && !r->campaign->StreamDone();
            r->stage = Stage::kFinalizing;
            plan->finals.push_back(r);
            plan->tasks.push_back([this, r] { FinalizeJob(r); });
          } else {
            plan->steps.push_back(r);
            plan->tasks.push_back([r, quantum] {
              auto start = Clock::now();
              r->campaign->StepStream(quantum);
              r->active_ms += MsBetween(start, Clock::now());
            });
          }
        } else {
          if (r->cancel_requested && !r->campaign->Done()) {
            r->finalize_cancelled = true;
            r->stage = Stage::kFinalizing;
            plan->finals.push_back(r);
            plan->tasks.push_back([this, r] { FinalizeJob(r); });
          } else if (!r->campaign->Done()) {
            r->group->stepped_this_round = true;
            plan->steps.push_back(r);
            plan->tasks.push_back([r, interval] {
              auto start = Clock::now();
              r->campaign->StepRound(interval);
              r->active_ms += MsBetween(start, Clock::now());
            });
          }
          // A member that exhausted its budget keeps exporting/importing in
          // migration rounds and finalizes when the whole group is done.
        }
        break;
      case Stage::kFinalizing:
        // Set by group completion last settle; schedule the finalize now.
        plan->finals.push_back(r);
        plan->tasks.push_back([this, r] { FinalizeJob(r); });
        break;
      case Stage::kDone:
        break;
    }
  }
}

void FuzzService::SettleRoundLocked(const RoundPlan& plan) {
  // Island compiles: survivors wait for their group, failures finish here.
  for (JobRecord* r : plan.compiles) {
    if (r->artifact != nullptr) {
      r->stage = Stage::kCompiled;
    } else {
      MarkDoneLocked(r);
    }
  }

  // Standalone setups and island constructs.
  for (JobRecord* r : plan.setups) {
    if (r->campaign == nullptr) {
      MarkDoneLocked(r);  // compile failed (standalone path)
      continue;
    }
    r->stage = Stage::kActive;
    SnapshotProgressLocked(r);
  }

  // Step slices: count rounds and refresh the between-rounds snapshots.
  for (JobRecord* r : plan.steps) {
    if (r->group == nullptr) ++r->rounds;
    SnapshotProgressLocked(r);
  }

  // Finalized jobs — processed before the group sweep so a group whose
  // last member finalized this round retires (and frees its queues) now.
  for (JobRecord* r : plan.finals) MarkDoneLocked(r);

  // Groups: build sharders once every member compiled, run one serial
  // migration per group that stepped, detect completion, retire drained
  // groups (freeing their seed queues) from the live list.
  for (size_t g = 0; g < live_groups_.size();) {
    GroupRecord* group = live_groups_[g];
    if (group->finished) {
      if (group->open_members == 0) {
        for (JobRecord* m : group->members) m->queue = nullptr;
        group->sharder.reset();
        live_groups_.erase(live_groups_.begin() + static_cast<long>(g));
        continue;
      }
      ++g;
      continue;
    }
    ++g;
    if (!group->built) {
      bool ready = true;
      for (JobRecord* m : group->members) {
        if (m->stage != Stage::kCompiled && m->stage != Stage::kDone) {
          ready = false;
          break;
        }
      }
      if (ready) BuildSharderLocked(group);
      continue;
    }
    if (group->stepped_this_round) {
      group->sharder->RunMigrationRound(options_.migration_top_k);
      ++group->migration_rounds;
      group->stepped_this_round = false;
      for (JobRecord* m : group->members) {
        if (m->stage == Stage::kActive) {
          m->progress.round_index = group->migration_rounds;
        }
      }
    }
    bool all_done = true;
    for (JobRecord* m : group->members) {
      if (m->stage == Stage::kDone) continue;
      if (m->stage == Stage::kActive && m->campaign->Done()) continue;
      all_done = false;
      break;
    }
    if (all_done) {
      group->finished = true;
      for (JobRecord* m : group->members) {
        if (m->stage == Stage::kActive) m->stage = Stage::kFinalizing;
      }
    }
  }
}

void FuzzService::BuildSharderLocked(GroupRecord* group) {
  std::vector<std::unique_ptr<fuzzer::SeedScheduler>> queues;
  std::vector<JobRecord*> survivors;
  for (JobRecord* m : group->members) {
    if (m->stage != Stage::kCompiled) continue;  // compile failed / cancelled
    m->island_id = static_cast<int>(survivors.size());
    queues.push_back(std::make_unique<fuzzer::SeedScheduler>(
        m->config.strategy.distance_feedback));
    m->queue = queues.back().get();
    survivors.push_back(m);
  }
  group->sharder =
      std::make_unique<fuzzer::ShardedSeedScheduler>(std::move(queues));
  group->built = true;
  for (JobRecord* m : survivors) m->stage = Stage::kConstruct;
}

// --------------------------------------------------- Task bodies (no lock) --

void FuzzService::ResolveArtifact(JobRecord* r) {
  if (r->job.artifact != nullptr) {
    r->artifact = r->job.artifact;
    return;
  }
  auto result = lang::CompileContract(r->job.source);
  if (result.ok()) {
    r->compiled = std::move(result).value();
    r->artifact = &*r->compiled;
  } else {
    r->outcome.error = result.status().ToString();
  }
}

void FuzzService::SetupStandalone(JobRecord* r) {
  auto start = Clock::now();
  ResolveArtifact(r);
  if (r->artifact != nullptr) {
    evm::ExecutionBackend* backend = nullptr;
    if (hub_ != nullptr) {
      r->adapter = std::make_unique<evm::AsyncBackendAdapter>(hub_.get());
      backend = r->adapter.get();
    } else if (options_.backend_workers > 0) {
      // Private-adapter mode: the campaign owns its backend
      // (config.async_workers was set by EffectiveConfig).
    } else if (options_.reuse_sessions) {
      r->session = session_pool_.Acquire();
      backend = r->session.get();
    }
    r->campaign = std::make_unique<fuzzer::Campaign>(
        r->artifact, r->config, backend, nullptr, -1);
    r->campaign->SeedCorpus();
  }
  r->active_ms += MsBetween(start, Clock::now());
}

void FuzzService::CompileIslandMember(JobRecord* r) {
  auto start = Clock::now();
  ResolveArtifact(r);
  r->active_ms += MsBetween(start, Clock::now());
}

void FuzzService::ConstructIslandMember(JobRecord* r) {
  auto start = Clock::now();
  evm::ExecutionBackend* backend = nullptr;
  if (hub_ != nullptr) {
    r->adapter = std::make_unique<evm::AsyncBackendAdapter>(hub_.get());
    backend = r->adapter.get();
  }
  // Non-hub modes: the campaign owns its backend — a private
  // AsyncBackendAdapter (config.async_workers) or a SessionBackend. An
  // island campaign's sessions must survive across rounds, so pooled
  // leasing would pin them anyway.
  r->campaign = std::make_unique<fuzzer::Campaign>(
      r->artifact, r->config, backend, r->queue, r->island_id);
  r->campaign->SeedCorpus();
  r->active_ms += MsBetween(start, Clock::now());
}

void FuzzService::FinalizeJob(JobRecord* r) {
  auto start = Clock::now();
  if (r->finalize_cancelled) {
    r->campaign->MarkCancelled();
    r->campaign->DrainStream();  // no-op on the stepped (island) path
  }
  r->outcome.result = r->campaign->Finalize();
  // Drop the campaign before its externally owned island queue (and before
  // the backend it unbinds on destruction) goes away.
  r->campaign.reset();
  if (r->session != nullptr) session_pool_.Release(std::move(r->session));
  r->adapter.reset();
  r->active_ms += MsBetween(start, Clock::now());
}

// ------------------------------------------------------------ Bookkeeping --

void FuzzService::SnapshotProgressLocked(JobRecord* r) {
  fuzzer::Campaign::Progress p = r->campaign->SnapshotProgress();
  r->progress.executions = p.executions;
  r->progress.transactions = p.transactions;
  r->progress.coverage = p.coverage;
  r->progress.bugs_found = p.bugs_found;
  r->progress.parents_in_flight = p.parents_in_flight;
  r->progress.inflight_executions = p.inflight_executions;
  r->progress.code_cache = p.code_cache;
  r->progress.heap_allocs = p.heap_allocs;
  r->progress.wave_allocs = p.wave_allocs;
  r->progress.wave_executions = p.wave_executions;
  r->progress.round_index =
      r->group != nullptr ? r->group->migration_rounds : r->rounds;
}

void FuzzService::MarkDoneLocked(JobRecord* r) {
  r->stage = Stage::kDone;
  r->outcome.elapsed_ms = r->active_ms;
  live_jobs_.erase(r->ticket);
  if (r->group != nullptr) --r->group->open_members;
  JobProgress& p = r->progress;
  p.state = JobState::kDone;
  // A finished job has nothing speculative left: the finalize path drained
  // the set and applied (or accounted for) every submitted child.
  p.parents_in_flight = 0;
  p.inflight_executions = 0;
  if (r->outcome.result.has_value()) {
    const fuzzer::CampaignResult& result = *r->outcome.result;
    p.executions = result.executions;
    p.transactions = result.transactions;
    p.coverage = result.branch_coverage;
    p.bugs_found = result.bugs.size();
    p.cancelled = result.cancelled;
    p.code_cache = result.code_cache;
    p.round_index =
        r->group != nullptr ? r->group->migration_rounds : r->rounds;
  }
  done_cv_.notify_all();
}

void FuzzService::CancelBeforeStartLocked(JobRecord* r) {
  // No campaign ever ran, so — per the JobOutcome contract — the result
  // stays empty (it can never be mistaken for a zero-coverage row) and the
  // error says why; the progress snapshot still reports the cancellation.
  r->finalize_cancelled = true;
  r->outcome.error = "cancelled before the campaign started";
  r->progress.cancelled = true;
  MarkDoneLocked(r);
}

}  // namespace mufuzz::engine
