#include "engine/fuzz_service.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "lang/compiler.h"

namespace mufuzz::engine {

namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int DefaultWorkerCount() {
  if (const char* env = std::getenv("MUFUZZ_WORKERS")) {
    char* end = nullptr;
    errno = 0;
    long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && errno != ERANGE && parsed > 0 &&
        parsed <= INT_MAX) {
      return static_cast<int>(parsed);
    }
    static const bool warned = [env] {
      std::fprintf(stderr,
                   "[mufuzz] ignoring MUFUZZ_WORKERS=\"%s\" (not a positive "
                   "integer); using hardware concurrency\n",
                   env);
      return true;
    }();
    (void)warned;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

FuzzService::FuzzService(ServiceOptions options) : options_(options) {
  workers_ = options_.workers > 0 ? options_.workers : DefaultWorkerCount();
  options_.round_quantum = std::max(1, options_.round_quantum);
  paused_ = options_.start_paused;
  last_metrics_log_ = Clock::now();
  if (options_.backend_workers > 0 && options_.share_backend) {
    evm::AsyncExecutionHub::Options hub_options;
    hub_options.workers = options_.backend_workers;
    hub_ = std::make_unique<evm::AsyncExecutionHub>(
        hub_options, options_.reuse_sessions ? &session_pool_ : nullptr);
  }
  pool_ = std::make_unique<WorkerPool>(workers_);
  coordinator_ = std::thread([this] { CoordinatorMain(); });
}

FuzzService::~FuzzService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    for (auto& [ticket, record] : live_jobs_) {
      record->cancel_requested = true;
    }
  }
  work_cv_.notify_all();
  if (coordinator_.joinable()) coordinator_.join();
  // Members are destroyed in reverse declaration order: job records (and
  // their hub-bound adapters) before hub_, which the hub's destructor
  // requires.
}

// ------------------------------------------------------------- Validation --

Status FuzzService::ValidateSubmission(const FuzzJob& job) const {
  if (options_.wave_size < 0) {
    return Status::InvalidArgument(
        "ServiceOptions::wave_size must be >= 0 (0 = no override)");
  }
  if (options_.backend_workers < 0) {
    return Status::InvalidArgument(
        "ServiceOptions::backend_workers must be >= 0 (0 = in-process "
        "execution)");
  }
  if (options_.migration_top_k < 0) {
    return Status::InvalidArgument(
        "ServiceOptions::migration_top_k must be >= 0 (0 = migrate "
        "nothing)");
  }
  if (options_.fanout < 0) {
    return Status::InvalidArgument(
        "ServiceOptions::fanout must be >= 0 (0 = no override)");
  }
  if (options_.step_slots < 0) {
    return Status::InvalidArgument(
        "ServiceOptions::step_slots must be >= 0 (0 = no fair-share gate)");
  }
  if (options_.metrics_log_interval_ms < 0) {
    return Status::InvalidArgument(
        "ServiceOptions::metrics_log_interval_ms must be >= 0 (0 = no "
        "periodic log line)");
  }
  if (job.config.wave_size < 0) {
    return Status::InvalidArgument("job \"" + job.name +
                                   "\": CampaignConfig::wave_size must be "
                                   ">= 0 (0/1 = the serial loop)");
  }
  if (job.config.fanout < 0) {
    return Status::InvalidArgument("job \"" + job.name +
                                   "\": CampaignConfig::fanout must be >= 0 "
                                   "(0/1 = the serial parent chain)");
  }
  if (job.config.async_workers < 0) {
    return Status::InvalidArgument("job \"" + job.name +
                                   "\": CampaignConfig::async_workers must "
                                   "be >= 0 (0 = in-process execution)");
  }
  if (job.config.max_executions < 0) {
    return Status::InvalidArgument(
        "job \"" + job.name +
        "\": CampaignConfig::max_executions must be >= 0");
  }
  return Status::OK();
}

fuzzer::CampaignConfig FuzzService::EffectiveConfig(const FuzzJob& job) const {
  fuzzer::CampaignConfig config = job.config;
  if (options_.wave_size > 0) config.wave_size = options_.wave_size;
  if (options_.fanout > 0) config.fanout = options_.fanout;
  if (options_.backend_workers > 0) {
    // Shared hub: the campaign gets an external hub-bound adapter, so its
    // own async_workers knob must not spin up a second backend. Private
    // mode: the campaign owns an adapter with the requested width.
    config.async_workers = hub_ != nullptr ? 0 : options_.backend_workers;
  }
  return config;
}

// -------------------------------------------------------------- Admission --

namespace {

/// Canonical tenant key: the empty tenant is the "default" tenant.
std::string ResolveTenant(const std::string& tenant) {
  return tenant.empty() ? "default" : tenant;
}

}  // namespace

Status FuzzService::AdmitLocked(const std::string& tenant, size_t incoming) {
  TenantRecord& record = tenants_[tenant];
  submitted_total_ += incoming;
  record.submitted += incoming;
  if (options_.max_live_jobs > 0 &&
      live_jobs_.size() + incoming > options_.max_live_jobs) {
    rejected_global_ += incoming;
    record.rejected += incoming;
    return Status::ResourceExhausted(
        "global admission queue full (" + std::to_string(live_jobs_.size()) +
        " live jobs, bound " + std::to_string(options_.max_live_jobs) +
        "); retry after jobs drain");
  }
  if (options_.max_live_jobs_per_tenant > 0 &&
      record.live + incoming > options_.max_live_jobs_per_tenant) {
    rejected_tenant_ += incoming;
    record.rejected += incoming;
    return Status::ResourceExhausted(
        "tenant \"" + tenant + "\" admission queue full (" +
        std::to_string(record.live) + " live jobs, bound " +
        std::to_string(options_.max_live_jobs_per_tenant) +
        "); retry after this tenant's jobs drain");
  }
  admitted_total_ += incoming;
  record.admitted += incoming;
  record.live += incoming;
  return Status::OK();
}

Result<JobTicket> FuzzService::Submit(FuzzJob job) {
  Status status = ValidateSubmission(job);
  if (!status.ok()) return status;
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return Status::Internal("FuzzService is shutting down");
  std::string tenant = ResolveTenant(job.tenant);
  Status admitted = AdmitLocked(tenant, 1);
  if (!admitted.ok()) return admitted;
  JobTicket ticket = next_ticket_++;
  auto record = std::make_unique<JobRecord>();
  record->ticket = ticket;
  record->job = std::move(job);
  record->config = EffectiveConfig(record->job);
  record->outcome.name = record->job.name;
  record->progress.state = JobState::kQueued;
  record->progress.fanout = std::max(1, record->config.fanout);
  record->tenant = std::move(tenant);
  record->admitted_at = Clock::now();
  live_jobs_.emplace(ticket, record.get());
  jobs_.emplace(ticket, std::move(record));
  work_cv_.notify_all();
  return ticket;
}

Result<GroupTicket> FuzzService::SubmitIslandGroup(std::vector<FuzzJob> jobs) {
  if (jobs.empty()) {
    return Status::InvalidArgument(
        "island group must have at least one member");
  }
  if (options_.exchange_interval <= 0) {
    return Status::InvalidArgument(
        "island groups require ServiceOptions::exchange_interval > 0 "
        "(submit the jobs individually to run them standalone)");
  }
  for (const FuzzJob& job : jobs) {
    Status status = ValidateSubmission(job);
    if (!status.ok()) return status;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return Status::Internal("FuzzService is shutting down");

  // All-or-nothing admission: every member counts as one attempt, and a
  // bound violation rejects (and counts) the whole group.
  std::map<std::string, size_t> per_tenant;
  for (const FuzzJob& job : jobs) ++per_tenant[ResolveTenant(job.tenant)];
  const size_t total = jobs.size();
  submitted_total_ += total;
  for (const auto& [tenant, count] : per_tenant) {
    tenants_[tenant].submitted += count;
  }
  auto reject_all = [&](bool global) {
    (global ? rejected_global_ : rejected_tenant_) += total;
    for (const auto& [tenant, count] : per_tenant) {
      tenants_[tenant].rejected += count;
    }
  };
  if (options_.max_live_jobs > 0 &&
      live_jobs_.size() + total > options_.max_live_jobs) {
    reject_all(/*global=*/true);
    return Status::ResourceExhausted(
        "global admission queue cannot take an island group of " +
        std::to_string(total) + " (" + std::to_string(live_jobs_.size()) +
        " live jobs, bound " + std::to_string(options_.max_live_jobs) + ")");
  }
  if (options_.max_live_jobs_per_tenant > 0) {
    for (const auto& [tenant, count] : per_tenant) {
      if (tenants_[tenant].live + count > options_.max_live_jobs_per_tenant) {
        reject_all(/*global=*/false);
        return Status::ResourceExhausted(
            "tenant \"" + tenant + "\" admission queue cannot take " +
            std::to_string(count) + " island members (" +
            std::to_string(tenants_[tenant].live) + " live jobs, bound " +
            std::to_string(options_.max_live_jobs_per_tenant) + ")");
      }
    }
  }
  admitted_total_ += total;
  for (const auto& [tenant, count] : per_tenant) {
    tenants_[tenant].admitted += count;
    tenants_[tenant].live += count;
  }

  auto group = std::make_unique<GroupRecord>();
  GroupTicket group_ticket;
  for (FuzzJob& job : jobs) {
    JobTicket ticket = next_ticket_++;
    auto record = std::make_unique<JobRecord>();
    record->ticket = ticket;
    record->job = std::move(job);
    record->config = EffectiveConfig(record->job);
    record->outcome.name = record->job.name;
    record->progress.state = JobState::kQueued;
    record->progress.fanout = std::max(1, record->config.fanout);
    record->tenant = ResolveTenant(record->job.tenant);
    record->admitted_at = Clock::now();
    record->group = group.get();
    group->members.push_back(record.get());
    group_ticket.members.push_back(ticket);
    live_jobs_.emplace(ticket, record.get());
    jobs_.emplace(ticket, std::move(record));
  }
  group->open_members = static_cast<int>(group->members.size());
  live_groups_.push_back(group.get());
  groups_.push_back(std::move(group));
  work_cv_.notify_all();
  return group_ticket;
}

// ----------------------------------------------------------- Client calls --

JobProgress FuzzService::Poll(JobTicket ticket) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(ticket);
  if (it == jobs_.end()) return JobProgress();  // state == kUnknown
  const JobRecord* record = it->second.get();
  JobProgress progress = record->progress;
  if (record->stage == Stage::kDone) {
    progress.state = JobState::kDone;
  } else if (record->cancel_requested) {
    progress.state = JobState::kCancelling;
  } else if (record->stage == Stage::kActive ||
             record->stage == Stage::kFinalizing) {
    progress.state = JobState::kRunning;
  } else {
    progress.state = JobState::kQueued;
  }
  return progress;
}

JobOutcome FuzzService::Wait(JobTicket ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(ticket);
  if (it == jobs_.end()) {
    JobOutcome outcome;
    outcome.error = "unknown FuzzService ticket";
    return outcome;
  }
  JobRecord* record = it->second.get();
  done_cv_.wait(lock, [record] { return record->stage == Stage::kDone; });
  return record->outcome;
}

std::vector<JobOutcome> FuzzService::WaitAll() {
  std::vector<JobTicket> tickets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tickets.reserve(jobs_.size());
    for (const auto& [ticket, record] : jobs_) tickets.push_back(ticket);
  }
  std::vector<JobOutcome> outcomes;
  outcomes.reserve(tickets.size());
  for (JobTicket ticket : tickets) outcomes.push_back(Wait(ticket));
  return outcomes;
}

void FuzzService::Cancel(JobTicket ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(ticket);
  if (it == jobs_.end() || it->second->stage == Stage::kDone) return;
  it->second->cancel_requested = true;
  work_cv_.notify_all();
}

void FuzzService::CancelGroup(const GroupTicket& group) {
  for (JobTicket ticket : group.members) Cancel(ticket);
}

void FuzzService::CancelAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [ticket, record] : live_jobs_) record->cancel_requested = true;
  work_cv_.notify_all();
}

void FuzzService::Resume() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = false;
  work_cv_.notify_all();
}

ServiceStats FuzzService::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return StatsLocked();
}

ServiceStats FuzzService::StatsLocked() const {
  ServiceStats stats;
  stats.submitted = submitted_total_;
  stats.admitted = admitted_total_;
  stats.rejected_global = rejected_global_;
  stats.rejected_tenant = rejected_tenant_;
  stats.completed = completed_total_;
  stats.cancelled = cancelled_total_;
  stats.deadline_hits = deadline_hits_;
  stats.rounds = rounds_done_;
  stats.live_jobs = live_jobs_.size();
  stats.executions = TotalExecutionsLocked();
  if (rate_samples_.size() >= 2) {
    const auto& first = rate_samples_.front();
    const auto& last = rate_samples_.back();
    double seconds =
        std::chrono::duration<double>(last.first - first.first).count();
    if (seconds > 0 && last.second >= first.second) {
      stats.executions_per_sec =
          static_cast<double>(last.second - first.second) / seconds;
    }
  }
  if (hub_ != nullptr) {
    stats.hub_workers = hub_->worker_count();
    stats.hub_queue_depth = hub_->queue_depth();
    stats.hub_queue_capacity = hub_->queue_capacity();
  }
  stats.sessions_created = session_pool_.created();

  // Live depth / executions per tenant come from the live records; the
  // monotone counters come from the tenant table.
  std::map<std::string, std::pair<size_t, uint64_t>> live_now;  // queued, exec
  for (const auto& [ticket, record] : live_jobs_) {
    auto& entry = live_now[record->tenant];
    if (record->stage == Stage::kAdmitted || record->stage == Stage::kCompiled ||
        record->stage == Stage::kConstruct) {
      ++entry.first;
      ++stats.queued_jobs;
    }
    entry.second += record->progress.executions;
  }
  stats.tenants.reserve(tenants_.size());
  for (const auto& [name, record] : tenants_) {
    TenantStats tenant;
    tenant.tenant = name;
    tenant.submitted = record.submitted;
    tenant.admitted = record.admitted;
    tenant.rejected = record.rejected;
    tenant.completed = record.completed;
    tenant.cancelled = record.cancelled;
    tenant.deadline_hits = record.deadline_hits;
    tenant.stepped_quanta = record.stepped_quanta;
    tenant.live_jobs = record.live;
    auto it = live_now.find(name);
    tenant.queued_jobs = it != live_now.end() ? it->second.first : 0;
    tenant.executions = record.completed_executions +
                        (it != live_now.end() ? it->second.second : 0);
    stats.tenants.push_back(std::move(tenant));
  }
  return stats;
}

uint64_t FuzzService::TotalExecutionsLocked() const {
  uint64_t total = completed_executions_;
  for (const auto& [ticket, record] : live_jobs_) {
    total += record->progress.executions;
  }
  return total;
}

// ------------------------------------------------------------ Coordinator --

bool FuzzService::AllDoneLocked() const { return live_jobs_.empty(); }

void FuzzService::CoordinatorMain() {
  for (;;) {
    RoundPlan plan;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stop_ || (!paused_ && !AllDoneLocked());
      });
      if (stop_ && AllDoneLocked()) return;
      PlanRoundLocked(&plan);
    }
    if (!plan.tasks.empty()) {
      pool_->ParallelEach(plan.tasks.size(),
                          [&](size_t i) { plan.tasks[i](); });
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      SettleRoundLocked(plan);
    }
  }
}

void FuzzService::PlanRoundLocked(RoundPlan* plan) {
  const uint64_t quantum = static_cast<uint64_t>(options_.round_quantum);
  const uint64_t interval =
      static_cast<uint64_t>(std::max(1, options_.exchange_interval));
  const auto now = Clock::now();
  // Standalone jobs ready to step this round; the fair-share gate below
  // decides which of them actually get a slot.
  std::vector<JobRecord*> step_candidates;

  // Iterate with an explicit iterator: a cancel-before-start completes the
  // job inline, which erases its live_jobs_ node — advance first.
  for (auto it = live_jobs_.begin(); it != live_jobs_.end();) {
    JobRecord* r = it->second;
    ++it;
    CheckDeadlineLocked(r, now);
    switch (r->stage) {
      case Stage::kAdmitted:
        if (r->cancel_requested) {
          CancelBeforeStartLocked(r);
          break;
        }
        if (r->group == nullptr) {
          plan->setups.push_back(r);
          plan->tasks.push_back([this, r] { SetupStandalone(r); });
        } else {
          plan->compiles.push_back(r);
          plan->tasks.push_back([this, r] { CompileIslandMember(r); });
        }
        break;
      case Stage::kCompiled:
        // Waiting for every group member to compile; the settle phase
        // builds the sharder and promotes the whole group together. A
        // cancel here lands before any campaign ran: the member drops out
        // of the group exactly like a compile failure.
        if (r->cancel_requested) CancelBeforeStartLocked(r);
        break;
      case Stage::kConstruct:
        if (r->cancel_requested) {
          // Island id and queue are already assigned, but no campaign ever
          // ran — the member's (empty) queue simply stays in the
          // archipelago, exporting nothing.
          CancelBeforeStartLocked(r);
          break;
        }
        plan->setups.push_back(r);
        plan->tasks.push_back([this, r] { ConstructIslandMember(r); });
        break;
      case Stage::kActive:
        if (r->group == nullptr) {
          if (r->cancel_requested || r->campaign->StreamDone()) {
            r->finalize_cancelled =
                r->cancel_requested && !r->campaign->StreamDone();
            r->stage = Stage::kFinalizing;
            plan->finals.push_back(r);
            plan->tasks.push_back([this, r] { FinalizeJob(r); });
          } else {
            step_candidates.push_back(r);
          }
        } else {
          if (r->cancel_requested && !r->campaign->Done()) {
            r->finalize_cancelled = true;
            r->stage = Stage::kFinalizing;
            plan->finals.push_back(r);
            plan->tasks.push_back([this, r] { FinalizeJob(r); });
          } else if (!r->campaign->Done()) {
            // Island rounds are barrier-coupled across the archipelago, so
            // they are never gated — but their work still charges the
            // tenant's fair-share deficit.
            r->group->stepped_this_round = true;
            tenants_[r->tenant].stepped_quanta += interval;
            if (r->progress.first_step_round < 0) {
              r->progress.first_step_round =
                  static_cast<int64_t>(rounds_done_);
            }
            plan->steps.push_back(r);
            plan->tasks.push_back([r, interval] {
              auto start = Clock::now();
              r->campaign->StepRound(interval);
              r->active_ms += MsBetween(start, Clock::now());
            });
          }
          // A member that exhausted its budget keeps exporting/importing in
          // migration rounds and finalizes when the whole group is done.
        }
        break;
      case Stage::kFinalizing:
        // Set by group completion last settle; schedule the finalize now.
        plan->finals.push_back(r);
        plan->tasks.push_back([this, r] { FinalizeJob(r); });
        break;
      case Stage::kDone:
        break;
    }
  }

  // Deficit fair-share over the standalone candidates: repeatedly pick the
  // job whose tenant has the least stepped work so far (ties: higher job
  // priority, then lower ticket), charging the tenant one quantum per pick
  // so the next pick sees the updated deficit. With no step_slots gate
  // every candidate is picked — in the same deterministic order — and the
  // charge keeps the tenants' deficit counters honest either way.
  const size_t slots =
      options_.step_slots > 0 ? static_cast<size_t>(options_.step_slots)
                              : step_candidates.size();
  size_t picked = 0;
  while (picked < slots && !step_candidates.empty()) {
    size_t best = 0;
    for (size_t i = 1; i < step_candidates.size(); ++i) {
      const JobRecord* a = step_candidates[i];
      const JobRecord* b = step_candidates[best];
      const uint64_t wa = tenants_[a->tenant].stepped_quanta;
      const uint64_t wb = tenants_[b->tenant].stepped_quanta;
      if (wa != wb ? wa < wb
                   : (a->job.priority != b->job.priority
                          ? a->job.priority > b->job.priority
                          : a->ticket < b->ticket)) {
        best = i;
      }
    }
    JobRecord* r = step_candidates[best];
    step_candidates.erase(step_candidates.begin() +
                          static_cast<long>(best));
    tenants_[r->tenant].stepped_quanta += quantum;
    if (r->progress.first_step_round < 0) {
      r->progress.first_step_round = static_cast<int64_t>(rounds_done_);
    }
    plan->steps.push_back(r);
    plan->tasks.push_back([r, quantum] {
      auto start = Clock::now();
      r->campaign->StepStream(quantum);
      r->active_ms += MsBetween(start, Clock::now());
    });
    ++picked;
  }
}

void FuzzService::SettleRoundLocked(const RoundPlan& plan) {
  // Island compiles: survivors wait for their group, failures finish here.
  for (JobRecord* r : plan.compiles) {
    if (r->artifact != nullptr) {
      r->stage = Stage::kCompiled;
    } else {
      MarkDoneLocked(r);
    }
  }

  // Standalone setups and island constructs.
  for (JobRecord* r : plan.setups) {
    if (r->campaign == nullptr) {
      MarkDoneLocked(r);  // compile failed (standalone path)
      continue;
    }
    r->stage = Stage::kActive;
    SnapshotProgressLocked(r);
  }

  // Step slices: count rounds and refresh the between-rounds snapshots.
  for (JobRecord* r : plan.steps) {
    if (r->group == nullptr) ++r->rounds;
    SnapshotProgressLocked(r);
  }

  // Finalized jobs — processed before the group sweep so a group whose
  // last member finalized this round retires (and frees its queues) now.
  for (JobRecord* r : plan.finals) MarkDoneLocked(r);

  // Groups: build sharders once every member compiled, run one serial
  // migration per group that stepped, detect completion, retire drained
  // groups (freeing their seed queues) from the live list.
  for (size_t g = 0; g < live_groups_.size();) {
    GroupRecord* group = live_groups_[g];
    if (group->finished) {
      if (group->open_members == 0) {
        for (JobRecord* m : group->members) m->queue = nullptr;
        group->sharder.reset();
        live_groups_.erase(live_groups_.begin() + static_cast<long>(g));
        continue;
      }
      ++g;
      continue;
    }
    ++g;
    if (!group->built) {
      bool ready = true;
      for (JobRecord* m : group->members) {
        if (m->stage != Stage::kCompiled && m->stage != Stage::kDone) {
          ready = false;
          break;
        }
      }
      if (ready) BuildSharderLocked(group);
      continue;
    }
    if (group->stepped_this_round) {
      group->sharder->RunMigrationRound(options_.migration_top_k);
      ++group->migration_rounds;
      group->stepped_this_round = false;
      for (JobRecord* m : group->members) {
        if (m->stage == Stage::kActive) {
          m->progress.round_index = group->migration_rounds;
        }
      }
    }
    bool all_done = true;
    for (JobRecord* m : group->members) {
      if (m->stage == Stage::kDone) continue;
      if (m->stage == Stage::kActive && m->campaign->Done()) continue;
      all_done = false;
      break;
    }
    if (all_done) {
      group->finished = true;
      for (JobRecord* m : group->members) {
        if (m->stage == Stage::kActive) m->stage = Stage::kFinalizing;
      }
    }
  }

  ++rounds_done_;
  SampleRoundLocked(Clock::now());
}

void FuzzService::CheckDeadlineLocked(JobRecord* r,
                                      std::chrono::steady_clock::time_point
                                          now) {
  if (r->deadline_hit || r->cancel_requested || r->job.deadline_ms == 0 ||
      r->stage == Stage::kDone) {
    return;
  }
  if (now - r->admitted_at <
      std::chrono::milliseconds(r->job.deadline_ms)) {
    return;
  }
  r->deadline_hit = true;
  r->cancel_requested = true;
  r->progress.deadline_expired = true;
  ++deadline_hits_;
  ++tenants_[r->tenant].deadline_hits;
}

void FuzzService::SampleRoundLocked(
    std::chrono::steady_clock::time_point now) {
  rate_samples_.emplace_back(now, TotalExecutionsLocked());
  while (rate_samples_.size() > 64) rate_samples_.pop_front();

  if (options_.metrics_log_interval_ms <= 0) return;
  if (now - last_metrics_log_ <
      std::chrono::milliseconds(options_.metrics_log_interval_ms)) {
    return;
  }
  last_metrics_log_ = now;
  ServiceStats stats = StatsLocked();
  std::string tenants;
  for (const TenantStats& tenant : stats.tenants) {
    if (!tenants.empty()) tenants += ",";
    tenants += tenant.tenant + ":" + std::to_string(tenant.live_jobs);
  }
  std::fprintf(stderr,
               "[mufuzzd] execs=%llu execs/s=%.0f live=%zu queued=%zu "
               "rounds=%llu rejected=%llu/%llu deadline_hits=%llu "
               "hub_queue=%zu/%zu tenants=[%s]\n",
               static_cast<unsigned long long>(stats.executions),
               stats.executions_per_sec, stats.live_jobs, stats.queued_jobs,
               static_cast<unsigned long long>(stats.rounds),
               static_cast<unsigned long long>(stats.rejected_tenant),
               static_cast<unsigned long long>(stats.rejected_global),
               static_cast<unsigned long long>(stats.deadline_hits),
               stats.hub_queue_depth, stats.hub_queue_capacity,
               tenants.c_str());
}

void FuzzService::BuildSharderLocked(GroupRecord* group) {
  std::vector<std::unique_ptr<fuzzer::SeedScheduler>> queues;
  std::vector<JobRecord*> survivors;
  for (JobRecord* m : group->members) {
    if (m->stage != Stage::kCompiled) continue;  // compile failed / cancelled
    m->island_id = static_cast<int>(survivors.size());
    queues.push_back(std::make_unique<fuzzer::SeedScheduler>(
        m->config.strategy.distance_feedback));
    m->queue = queues.back().get();
    survivors.push_back(m);
  }
  group->sharder =
      std::make_unique<fuzzer::ShardedSeedScheduler>(std::move(queues));
  group->built = true;
  for (JobRecord* m : survivors) m->stage = Stage::kConstruct;
}

// --------------------------------------------------- Task bodies (no lock) --

void FuzzService::ResolveArtifact(JobRecord* r) {
  if (r->job.artifact != nullptr) {
    r->artifact = r->job.artifact;
    return;
  }
  auto result = lang::CompileContract(r->job.source);
  if (result.ok()) {
    r->compiled = std::move(result).value();
    r->artifact = &*r->compiled;
  } else {
    r->outcome.error = result.status().ToString();
  }
}

void FuzzService::SetupStandalone(JobRecord* r) {
  auto start = Clock::now();
  ResolveArtifact(r);
  if (r->artifact != nullptr) {
    evm::ExecutionBackend* backend = nullptr;
    if (hub_ != nullptr) {
      r->adapter = std::make_unique<evm::AsyncBackendAdapter>(hub_.get());
      backend = r->adapter.get();
    } else if (options_.backend_workers > 0) {
      // Private-adapter mode: the campaign owns its backend
      // (config.async_workers was set by EffectiveConfig).
    } else if (options_.reuse_sessions) {
      r->session = session_pool_.Acquire();
      backend = r->session.get();
    }
    r->campaign = std::make_unique<fuzzer::Campaign>(
        r->artifact, r->config, backend, nullptr, -1);
    r->campaign->SeedCorpus();
  }
  r->active_ms += MsBetween(start, Clock::now());
}

void FuzzService::CompileIslandMember(JobRecord* r) {
  auto start = Clock::now();
  ResolveArtifact(r);
  r->active_ms += MsBetween(start, Clock::now());
}

void FuzzService::ConstructIslandMember(JobRecord* r) {
  auto start = Clock::now();
  evm::ExecutionBackend* backend = nullptr;
  if (hub_ != nullptr) {
    r->adapter = std::make_unique<evm::AsyncBackendAdapter>(hub_.get());
    backend = r->adapter.get();
  }
  // Non-hub modes: the campaign owns its backend — a private
  // AsyncBackendAdapter (config.async_workers) or a SessionBackend. An
  // island campaign's sessions must survive across rounds, so pooled
  // leasing would pin them anyway.
  r->campaign = std::make_unique<fuzzer::Campaign>(
      r->artifact, r->config, backend, r->queue, r->island_id);
  r->campaign->SeedCorpus();
  r->active_ms += MsBetween(start, Clock::now());
}

void FuzzService::FinalizeJob(JobRecord* r) {
  auto start = Clock::now();
  if (r->finalize_cancelled) {
    r->campaign->MarkCancelled();
    r->campaign->DrainStream();  // no-op on the stepped (island) path
  }
  r->outcome.result = r->campaign->Finalize();
  // Drop the campaign before its externally owned island queue (and before
  // the backend it unbinds on destruction) goes away.
  r->campaign.reset();
  if (r->session != nullptr) session_pool_.Release(std::move(r->session));
  r->adapter.reset();
  r->active_ms += MsBetween(start, Clock::now());
}

// ------------------------------------------------------------ Bookkeeping --

void FuzzService::SnapshotProgressLocked(JobRecord* r) {
  fuzzer::Campaign::Progress p = r->campaign->SnapshotProgress();
  r->progress.executions = p.executions;
  r->progress.transactions = p.transactions;
  r->progress.coverage = p.coverage;
  r->progress.bugs_found = p.bugs_found;
  r->progress.parents_in_flight = p.parents_in_flight;
  r->progress.inflight_executions = p.inflight_executions;
  r->progress.code_cache = p.code_cache;
  r->progress.heap_allocs = p.heap_allocs;
  r->progress.wave_allocs = p.wave_allocs;
  r->progress.wave_executions = p.wave_executions;
  r->progress.round_index =
      r->group != nullptr ? r->group->migration_rounds : r->rounds;
}

void FuzzService::MarkDoneLocked(JobRecord* r) {
  r->stage = Stage::kDone;
  r->outcome.elapsed_ms = r->active_ms;
  live_jobs_.erase(r->ticket);
  if (r->group != nullptr) --r->group->open_members;

  TenantRecord& tenant = tenants_[r->tenant];
  --tenant.live;
  ++tenant.completed;
  ++completed_total_;
  const bool via_cancel =
      r->progress.cancelled ||
      (r->outcome.result.has_value() && r->outcome.result->cancelled);
  if (via_cancel) {
    ++tenant.cancelled;
    ++cancelled_total_;
  }
  if (r->outcome.result.has_value()) {
    tenant.completed_executions += r->outcome.result->executions;
    completed_executions_ += r->outcome.result->executions;
  }
  JobProgress& p = r->progress;
  p.state = JobState::kDone;
  // A finished job has nothing speculative left: the finalize path drained
  // the set and applied (or accounted for) every submitted child.
  p.parents_in_flight = 0;
  p.inflight_executions = 0;
  if (r->outcome.result.has_value()) {
    const fuzzer::CampaignResult& result = *r->outcome.result;
    p.executions = result.executions;
    p.transactions = result.transactions;
    p.coverage = result.branch_coverage;
    p.bugs_found = result.bugs.size();
    p.cancelled = result.cancelled;
    p.code_cache = result.code_cache;
    p.round_index =
        r->group != nullptr ? r->group->migration_rounds : r->rounds;
  }
  done_cv_.notify_all();
}

void FuzzService::CancelBeforeStartLocked(JobRecord* r) {
  // No campaign ever ran, so — per the JobOutcome contract — the result
  // stays empty (it can never be mistaken for a zero-coverage row) and the
  // error says why; the progress snapshot still reports the cancellation.
  r->finalize_cancelled = true;
  r->outcome.error = r->deadline_hit
                         ? "deadline expired before the campaign started"
                         : "cancelled before the campaign started";
  r->progress.cancelled = true;
  MarkDoneLocked(r);
}

}  // namespace mufuzz::engine
