#ifndef MUFUZZ_ENGINE_FUZZ_SERVICE_H_
#define MUFUZZ_ENGINE_FUZZ_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/worker_pool.h"
#include "evm/async_backend.h"
#include "evm/execution_backend.h"
#include "fuzzer/campaign.h"
#include "fuzzer/sharded_seed_scheduler.h"
#include "lang/codegen.h"

namespace mufuzz::engine {

/// One unit of fuzzing work: fuzz one contract with one (strategy, seed)
/// configuration. Either `artifact` is set (pre-compiled, caller keeps
/// ownership and must outlive the job) or `source` is compiled by the
/// worker that picks the job up — which parallelizes compilation too.
struct FuzzJob {
  std::string name;    ///< label carried through to the outcome
  std::string source;  ///< compiled when `artifact` is null
  const lang::ContractArtifact* artifact = nullptr;
  fuzzer::CampaignConfig config;
  /// Jobs sharing a non-negative group id form an island archipelago: when
  /// `RunnerOptions::exchange_interval` > 0 their campaigns run in lockstep
  /// rounds and exchange top seeds between rounds (see ShardedSeedScheduler).
  /// Group members should fuzz the same contract — migrated sequences index
  /// into the destination's ABI. -1 (default) = standalone job. Only the
  /// ParallelRunner compat shim reads this tag; the FuzzService API forms
  /// groups explicitly via SubmitIslandGroup and ignores it on Submit.
  int island_group = -1;

  // ------------------------------------------------------- Multi-tenancy --
  /// Accounting identity for admission control, fair-share scheduling, and
  /// the per-tenant metrics plane. Empty maps to "default". Tenancy is
  /// scheduling-only: it decides *when* a job's rounds run and whether the
  /// job is admitted at all, never what its campaign computes.
  std::string tenant;
  /// Fair-share tie-break among a tenant's own ready jobs (higher steps
  /// first; ties fall back to ticket order). Does not buy a tenant more
  /// aggregate share — that is the fair-share deficit's job.
  int priority = 0;
  /// Wall-clock budget in milliseconds, measured from admission. 0 = none.
  /// Expiry rides the Cancel path: the job stops at its next round boundary
  /// with a partial-but-valid result flagged `cancelled` (or an empty
  /// result if the campaign never started), and the expiry is counted in
  /// ServiceStats::deadline_hits and flagged on the job's progress.
  uint64_t deadline_ms = 0;
};

/// What came back for one job. `result` is empty exactly when the job never
/// ran a campaign (compile failure, or cancelled before it started) — a
/// failed job can never be mistaken for a zero-coverage row. A job
/// cancelled mid-run has a partial-but-valid result with
/// `result->cancelled` set.
struct JobOutcome {
  std::string name;
  std::optional<fuzzer::CampaignResult> result;
  std::string error;  ///< compile diagnostics when `result` is empty
  /// Per-job *active* time: the sum of the job's compile, seed-corpus,
  /// step-round, and finalize slices on whichever workers ran them. Under
  /// the interleaved FuzzService scheduler this is NOT wall-clock between
  /// first and last touch — a job parks between rounds while other jobs'
  /// rounds run, and that parked time is excluded. (The pre-service batch
  /// runner ran each standalone job in one uninterrupted slice, where the
  /// two notions coincided.)
  double elapsed_ms = 0;
};

/// Handle for one submitted job. Tickets are issued densely from 1 per
/// service and are never reused.
using JobTicket = uint64_t;

/// Handle for one island archipelago: the member jobs' tickets, in
/// submission order (which is also island-id order).
struct GroupTicket {
  std::vector<JobTicket> members;
};

/// Where a job is in its service lifecycle.
enum class JobState {
  kUnknown,     ///< ticket was never issued by this service
  kQueued,      ///< admitted; compile/deploy has not finished yet
  kRunning,     ///< stepping (or finalizing) on the worker pool
  kCancelling,  ///< cancel requested; stops at the next round boundary
  kDone,        ///< outcome available; Wait() will not block
};

/// A progress snapshot for one job, taken between scheduler rounds (never
/// mid-round — rounds are the service's consistency barriers). On a
/// finished ticket, Poll keeps returning the final snapshot.
struct JobProgress {
  JobState state = JobState::kUnknown;
  uint64_t executions = 0;
  uint64_t transactions = 0;
  /// Branch-coverage fraction so far (final figure once done).
  double coverage = 0;
  /// Distinct (bug, pc) oracle findings so far.
  size_t bugs_found = 0;
  /// Completed scheduler rounds: step rounds for a standalone job,
  /// migration rounds for an island member.
  int round_index = 0;
  /// Effective speculative fan-out (K) the job's campaign runs with —
  /// parents expanded per selection round (service override applied).
  int fanout = 1;
  /// Parents in the campaign's parked speculative set at snapshot time
  /// (streamed standalone jobs park the whole set across rounds; 0 for
  /// island members, whose rounds drain, and once the job is done).
  int parents_in_flight = 0;
  /// Executions submitted to the backend but not yet applied at snapshot
  /// time — the speculative waves in flight, so progress keeps moving on
  /// large waves instead of stalling at round boundaries. 0 once done.
  uint64_t inflight_executions = 0;
  /// Set once the job finished via the cancel path.
  bool cancelled = false;
  /// Set when the job's `deadline_ms` expired (the cancellation — counted
  /// in ServiceStats::deadline_hits — was deadline-initiated).
  bool deadline_expired = false;
  /// Service round counter value when the job's campaign first stepped
  /// (-1 until then). Deterministic given submission order and service
  /// options — what the fair-share ordering tests pin.
  int64_t first_step_round = -1;
  /// Code-cache counters of the job's backend at snapshot time (process-wide
  /// cache by default — diagnostics, not part of any reproducibility key).
  evm::CodeCacheStats code_cache;
  /// MUFUZZ_ALLOC_STATS counters (all zero when the hook is compiled out):
  /// heap allocations since the campaign reached steady state, and the most
  /// recent pipeline sweep's allocation / execution deltas. Process-wide
  /// counters — diagnostics, not part of any reproducibility key.
  uint64_t heap_allocs = 0;
  uint64_t wave_allocs = 0;
  uint64_t wave_executions = 0;
};

/// FuzzService knobs. The execution-semantics knobs (`wave_size`,
/// `fanout`, `exchange_interval`, `migration_top_k`) are part of each
/// job's reproducibility key; the scheduling knobs (`workers`,
/// `round_quantum`, `backend_workers`, `share_backend`, `reuse_sessions`)
/// never influence results.
struct ServiceOptions {
  /// Worker threads for campaign rounds; <= 0 means DefaultWorkerCount().
  int workers = 0;
  /// Lease execution sessions from the service's shared pool instead of
  /// allocating per campaign.
  bool reuse_sessions = true;
  /// Retained for RunnerOptions compatibility. Worker-local randomness
  /// never influences job results.
  uint64_t worker_seed = 0x5eed;
  /// > 0 overrides every job's CampaignConfig::wave_size — the pipelined
  /// mode's wave width W (part of the reproducibility key).
  int wave_size = 0;
  /// > 0 overrides every job's CampaignConfig::fanout — the speculative
  /// multi-parent expansion width K (part of the reproducibility key,
  /// exactly like wave_size; 1 = the serial parent chain).
  int fanout = 0;
  /// > 0 runs every campaign over async execution workers. With
  /// `share_backend` (default) one AsyncExecutionHub with this many
  /// threads serves all campaigns; otherwise each campaign owns a private
  /// AsyncBackendAdapter with this many threads.
  int backend_workers = 0;
  /// One shared execution hub for all pipelined campaigns (vs. a private
  /// adapter per campaign). Scheduling-only: results are identical either
  /// way.
  bool share_backend = true;
  /// Sequence executions each island runs between migration rounds —
  /// SubmitIslandGroup requires it > 0.
  int exchange_interval = 0;
  /// Seeds each island exports per migration round.
  int migration_top_k = 2;
  /// Executions a standalone job advances per scheduler round — the
  /// progress/cancel granularity. Scheduling-only: the streamed campaign
  /// suspends (never drains) at round boundaries, so results are identical
  /// for any quantum (unlike islands' exchange_interval, which is a real
  /// round barrier and part of the semantics). Clamped to >= 1.
  int round_quantum = 128;

  // -------------------------------------------- Admission & multi-tenancy --
  /// Upper bound on *live* (admitted, not yet done) jobs across all
  /// tenants; a Submit past the bound is rejected with ResourceExhausted
  /// instead of buffering unboundedly. 0 = unbounded.
  size_t max_live_jobs = 0;
  /// Same bound per tenant. 0 = unbounded.
  size_t max_live_jobs_per_tenant = 0;
  /// Standalone step slices the coordinator schedules per round. When more
  /// jobs are ready than slots, tenants split the slots by deficit
  /// fair-share: each round repeatedly picks the ready job whose tenant has
  /// the least stepped work so far (ties: higher job priority, then lower
  /// ticket), charging the tenant one quantum per pick. Island archipelago
  /// rounds are barrier-coupled and never gated, but their stepped work is
  /// charged to the tenant, deprioritizing its standalone jobs in turn.
  /// Scheduling-only — results never depend on when a job's rounds ran.
  /// 0 = no gate (every ready job steps every round).
  int step_slots = 0;
  /// Emit a one-line metrics summary (executions/s, live jobs, queue
  /// depths, rejects, deadline hits) to stderr roughly this often, at
  /// round boundaries. 0 = never.
  int metrics_log_interval_ms = 0;
  /// Construct the coordinator paused: jobs are admitted (and admission
  /// bounds enforced) but no round runs until Resume(). Lets tests build a
  /// deterministic backlog before scheduling starts.
  bool start_paused = false;
};

/// Point-in-time metrics for one tenant (ServiceStats::tenants entry).
struct TenantStats {
  std::string tenant;
  uint64_t submitted = 0;      ///< admission attempts (valid configs only)
  uint64_t admitted = 0;
  uint64_t rejected = 0;       ///< admission-control rejections
  uint64_t completed = 0;      ///< jobs that reached kDone
  uint64_t cancelled = 0;      ///< completions via the cancel path
  uint64_t deadline_hits = 0;  ///< cancellations initiated by a deadline
  uint64_t executions = 0;     ///< finished + live snapshot executions
  /// Fair-share deficit counter: executions' worth of step quanta charged
  /// to the tenant so far (standalone quanta + island intervals).
  uint64_t stepped_quanta = 0;
  size_t live_jobs = 0;    ///< admitted, not yet done (queue depth now)
  size_t queued_jobs = 0;  ///< live jobs whose campaign is not stepping yet
};

/// Point-in-time service metrics — the metrics plane the STATS verb and the
/// periodic log line serve. Counters are monotone over the service's
/// lifetime; depths/rates are snapshots.
struct ServiceStats {
  uint64_t submitted = 0;        ///< admission attempts (valid configs only)
  uint64_t admitted = 0;
  uint64_t rejected_global = 0;  ///< rejected by the global live-job bound
  uint64_t rejected_tenant = 0;  ///< rejected by a per-tenant bound
  uint64_t completed = 0;
  uint64_t cancelled = 0;
  uint64_t deadline_hits = 0;
  uint64_t rounds = 0;  ///< coordinator rounds completed
  size_t live_jobs = 0;
  size_t queued_jobs = 0;
  uint64_t executions = 0;  ///< finished jobs + live progress snapshots
  /// Throughput over the recent round window (0 until two samples exist).
  double executions_per_sec = 0;
  // Shared execution hub utilization (all zero without a shared hub).
  int hub_workers = 0;
  size_t hub_queue_depth = 0;
  size_t hub_queue_capacity = 0;
  size_t sessions_created = 0;  ///< session-pool diagnostics
  std::vector<TenantStats> tenants;  ///< sorted by tenant name
};

/// Worker threads to use by default: $MUFUZZ_WORKERS when set to a positive
/// integer, otherwise the hardware concurrency (min 1). A malformed value
/// (non-numeric, trailing garbage, zero/negative, out of range) is reported
/// once on stderr and ignored instead of silently falling through.
int DefaultWorkerCount();

/// A long-lived streaming fuzzing engine: submit jobs at any time, watch
/// their progress, cancel them, and collect outcomes — the service keeps a
/// persistent WorkerPool busy with whatever campaign rounds are ready,
/// interleaving standalone jobs and island archipelagos on the same
/// threads (and, in pipelined mode, sharing one AsyncExecutionHub across
/// every campaign).
///
/// ## Scheduling model
///
/// A coordinator thread runs *rounds*: each round fans the ready work —
/// compiles, seed corpora, standalone step slices (`round_quantum`
/// executions via the campaign's suspended-pipeline streaming interface),
/// island step rounds (`exchange_interval` executions, drained) — across
/// the pool, then, behind the fork-join barrier, runs island migrations
/// serially, snapshots progress, finalizes finished or cancelled jobs, and
/// admits new submissions. Rounds are the only consistency barriers:
/// Poll() serves the last between-rounds snapshot, and Cancel() takes
/// effect at the next round boundary, finalizing a partial-but-valid
/// result flagged `cancelled`.
///
/// ## Determinism contract
///
/// A job's result is a pure function of its own `(config, seed, wave_size,
/// fanout)` — independent of submission order, what else is running, worker
/// count, scheduling, `round_quantum`, and other jobs being cancelled
/// around it. A streamed job parks its whole speculative parent set (all K
/// parents and their in-flight waves) across round boundaries, and Cancel
/// drains that set — applying every submitted child in (parent rank, child
/// index) order — before finalizing the partial result.
/// An island member's result is a pure function of its *group's* jobs and
/// the (exchange_interval, migration_top_k) pair — members are coupled by
/// seed migration, by design, but never coupled to jobs outside the group.
/// Streamed standalone jobs reproduce the batch path (and a plain
/// RunCampaign call) bit for bit. CI checks all of this differentially.
///
/// ## Threads
///
/// Submit/Poll/Wait/Cancel are safe from any thread. Destruction cancels
/// whatever is still running (at its round boundary) and joins.
class FuzzService {
 public:
  explicit FuzzService(ServiceOptions options = ServiceOptions());
  ~FuzzService();

  FuzzService(const FuzzService&) = delete;
  FuzzService& operator=(const FuzzService&) = delete;

  /// Admits one standalone job (FuzzJob::island_group is ignored). Fails —
  /// without admitting anything — on out-of-range config knobs: negative
  /// `wave_size`, `async_workers`, or `max_executions` on the job, or
  /// negative `wave_size` / `backend_workers` / `migration_top_k` on the
  /// service options.
  Result<JobTicket> Submit(FuzzJob job);

  /// Admits `jobs` as one island archipelago: members run in lockstep
  /// rounds of `exchange_interval` executions and exchange their top
  /// `migration_top_k` seeds between rounds, with island ids assigned in
  /// submission order. All-or-nothing: validation failure (everything
  /// Submit checks, plus `exchange_interval` must be > 0 and the group
  /// non-empty) admits no member.
  Result<GroupTicket> SubmitIslandGroup(std::vector<FuzzJob> jobs);

  /// The job's latest between-rounds snapshot (final one once done;
  /// `state == kUnknown` for a ticket this service never issued).
  JobProgress Poll(JobTicket ticket) const;

  /// Blocks until the job finished and returns its outcome. Idempotent —
  /// outcomes are retained for the service's lifetime, so waiting twice
  /// returns the same outcome again.
  JobOutcome Wait(JobTicket ticket);

  /// Blocks until every job submitted so far finished; returns all their
  /// outcomes in ticket order (idempotent, like Wait).
  std::vector<JobOutcome> WaitAll();

  /// Requests cancellation: the job stops at its next round boundary and
  /// finalizes a partial-but-valid result flagged `cancelled`. A job
  /// cancelled before its campaign ever started completes with an *empty*
  /// result and an explanatory error instead (the JobOutcome contract:
  /// never-ran jobs can't be mistaken for zero-coverage rows). No-op on a
  /// finished (or unknown) ticket. Cancelling an island member removes it
  /// from stepping but keeps its seed queue in the group's migration
  /// rounds (exactly like a member that exhausted its budget), so the
  /// survivors' schedule stays well-formed.
  void Cancel(JobTicket ticket);

  /// Cancels every member of a group.
  void CancelGroup(const GroupTicket& group);

  /// Requests cancellation of every live job (the server-shutdown path:
  /// unblocks Wait()ers bounded by one round per job).
  void CancelAll();

  /// Starts the coordinator after a `start_paused` construction. Idempotent;
  /// no-op on a service that never paused.
  void Resume();

  /// Snapshot of the metrics plane (safe from any thread).
  ServiceStats Stats() const;

  /// Resolved worker-thread count.
  int workers() const { return workers_; }

  /// Session backends created so far (pool diagnostics).
  size_t sessions_created() const { return session_pool_.created(); }

 private:
  /// Coordinator-internal job lifecycle (JobState is the public view).
  enum class Stage {
    kAdmitted,    ///< setup (standalone) or compile (island) pending
    kCompiled,    ///< island member compiled; waiting for the group sharder
    kConstruct,   ///< island member: construct + seed corpus pending
    kActive,      ///< stepping
    kFinalizing,  ///< finalize task scheduled
    kDone,
  };

  struct GroupRecord;

  struct JobRecord {
    JobTicket ticket = 0;
    FuzzJob job;
    fuzzer::CampaignConfig config;  ///< effective (service overrides applied)
    Stage stage = Stage::kAdmitted;
    bool cancel_requested = false;
    bool finalize_cancelled = false;  ///< finalize via the cancel path
    JobProgress progress;
    JobOutcome outcome;
    double active_ms = 0;
    int rounds = 0;  ///< completed standalone step rounds
    std::string tenant;  ///< resolved ("" mapped to "default")
    std::chrono::steady_clock::time_point admitted_at;
    bool deadline_hit = false;  ///< deadline expiry already counted

    // Filled by setup tasks.
    std::optional<lang::ContractArtifact> compiled;
    const lang::ContractArtifact* artifact = nullptr;
    std::unique_ptr<evm::SessionBackend> session;       ///< pooled lease
    std::unique_ptr<evm::AsyncBackendAdapter> adapter;  ///< hub binding
    std::unique_ptr<fuzzer::Campaign> campaign;

    // Island members only.
    GroupRecord* group = nullptr;
    fuzzer::SeedScheduler* queue = nullptr;  ///< owned by group->sharder
    int island_id = -1;
  };

  struct GroupRecord {
    std::vector<JobRecord*> members;  ///< submission order
    std::unique_ptr<fuzzer::ShardedSeedScheduler> sharder;
    bool built = false;
    bool finished = false;
    bool stepped_this_round = false;
    int migration_rounds = 0;
    int open_members = 0;  ///< members not yet kDone
  };

  /// One coordinator round's plan: the tasks to fan across the pool plus
  /// the records they belong to, bucketed for the settle phase.
  struct RoundPlan {
    std::vector<std::function<void()>> tasks;
    std::vector<JobRecord*> compiles;  ///< island members compiling
    std::vector<JobRecord*> setups;    ///< standalone setup / island construct
    std::vector<JobRecord*> steps;     ///< stepped this round
    std::vector<JobRecord*> finals;    ///< finalize tasks
  };

  /// Per-tenant accounting: admission counters for the metrics plane plus
  /// the fair-share deficit (`stepped_quanta`) the step scheduler keys on.
  struct TenantRecord {
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;
    uint64_t cancelled = 0;
    uint64_t deadline_hits = 0;
    uint64_t completed_executions = 0;
    uint64_t stepped_quanta = 0;
    size_t live = 0;
  };

  void CoordinatorMain();
  /// Builds this round's task list (requires mu_). Tasks run outside the
  /// lock; each touches only its own job record.
  void PlanRoundLocked(RoundPlan* plan);
  /// Post-barrier serial work (requires mu_): migrations, stage
  /// transitions, snapshots, completion notifications.
  void SettleRoundLocked(const RoundPlan& plan);

  // Task bodies (run on pool workers, no lock held).
  /// Adopts the job's pre-compiled artifact or compiles its source; on
  /// failure leaves `artifact` null with the diagnostics in
  /// `outcome.error`.
  void ResolveArtifact(JobRecord* r);
  void SetupStandalone(JobRecord* r);
  void CompileIslandMember(JobRecord* r);
  void ConstructIslandMember(JobRecord* r);
  void FinalizeJob(JobRecord* r);

  void BuildSharderLocked(GroupRecord* group);
  void SnapshotProgressLocked(JobRecord* r);
  void MarkDoneLocked(JobRecord* r);
  /// Completes a job that was cancelled before its campaign ever ran:
  /// empty-but-valid result, flagged cancelled.
  void CancelBeforeStartLocked(JobRecord* r);
  Status ValidateSubmission(const FuzzJob& job) const;
  fuzzer::CampaignConfig EffectiveConfig(const FuzzJob& job) const;
  bool AllDoneLocked() const;
  /// Admission gate: checks the global and per-tenant live-job bounds for
  /// `incoming` more jobs of `tenant`, counting the attempt (and any
  /// rejection) in the metrics plane.
  Status AdmitLocked(const std::string& tenant, size_t incoming);
  /// Marks the job cancel-requested when its deadline expired (counted once).
  void CheckDeadlineLocked(JobRecord* r,
                           std::chrono::steady_clock::time_point now);
  /// Finished + live-snapshot executions across all jobs.
  uint64_t TotalExecutionsLocked() const;
  /// Appends a throughput sample and emits the periodic metrics log line.
  void SampleRoundLocked(std::chrono::steady_clock::time_point now);
  ServiceStats StatsLocked() const;

  ServiceOptions options_;
  int workers_ = 1;
  evm::SessionPool session_pool_;
  std::unique_ptr<evm::AsyncExecutionHub> hub_;  ///< shared pipelined mode
  std::unique_ptr<WorkerPool> pool_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< coordinator: submissions / stop
  std::condition_variable done_cv_;  ///< waiters: a job reached kDone
  std::map<JobTicket, std::unique_ptr<JobRecord>> jobs_;
  std::vector<std::unique_ptr<GroupRecord>> groups_;
  /// Records not yet kDone / groups not yet retired: what the coordinator
  /// actually scans each round, so a long-lived service pays per-round
  /// cost proportional to *active* work, not to everything ever submitted
  /// (jobs_ retains outcomes for Wait-idempotence).
  std::map<JobTicket, JobRecord*> live_jobs_;
  std::vector<GroupRecord*> live_groups_;
  JobTicket next_ticket_ = 1;
  bool stop_ = false;
  bool paused_ = false;  ///< start_paused and Resume() not called yet

  // Metrics plane (all guarded by mu_). tenants_ is insert-only: a tenant's
  // counters survive its last job so STATS stays a lifetime view.
  std::map<std::string, TenantRecord> tenants_;
  uint64_t submitted_total_ = 0;
  uint64_t admitted_total_ = 0;
  uint64_t rejected_global_ = 0;
  uint64_t rejected_tenant_ = 0;
  uint64_t completed_total_ = 0;
  uint64_t cancelled_total_ = 0;
  uint64_t deadline_hits_ = 0;
  uint64_t completed_executions_ = 0;
  uint64_t rounds_done_ = 0;
  /// (time, total executions) ring for the executions/s window.
  std::deque<std::pair<std::chrono::steady_clock::time_point, uint64_t>>
      rate_samples_;
  std::chrono::steady_clock::time_point last_metrics_log_;

  std::thread coordinator_;
};

}  // namespace mufuzz::engine

#endif  // MUFUZZ_ENGINE_FUZZ_SERVICE_H_
